//! The Isis-style stack (Figs 1–2): Membership+FD → View Synchrony (flush)
//! → fixed-sequencer Atomic Broadcast.
//!
//! Structural properties reproduced faithfully (they are what the paper's
//! Section 4 measures the new architecture against):
//!
//! * **Perfect-failure-detector emulation**: any suspicion leads to
//!   exclusion; a wrongly excluded process is *killed* and must re-join with
//!   a full state transfer (§4.3).
//! * **Sending view delivery**: during a view change, senders are blocked
//!   from the flush start until the new view is installed (§4.4); the stack
//!   emits [`IsisEvent::Blocked`] markers so experiments can measure the
//!   window.
//! * **Two ordering protocols**: the sequencer orders application messages
//!   in the steady state, and the flush protocol re-solves ordering for
//!   in-flight messages at every view change (§4.1).
//!
//! Like the original Isis, the stack assumes reliable FIFO links (the
//! paper-era systems ran on such a substrate); traditional-baseline
//! experiments therefore run on a loss-free simulated LAN.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use bytes::Bytes;
use gcs_kernel::{
    Component, Context, Event, PayloadRef, Process, ProcessId, SharedArena, Time, TimeDelta,
    TimerId,
};
use gcs_sim::{Metrics, SimConfig, SimWorld, Topology, Trace};

/// Message identity within the Isis stack.
pub type IsisMsgId = (ProcessId, u64);

/// Configuration of an Isis-style process.
#[derive(Clone, Copy, Debug)]
pub struct IsisConfig {
    /// Heartbeat period.
    pub heartbeat_interval: TimeDelta,
    /// Failure-detection timeout — in the traditional architecture this is
    /// also the *exclusion* timeout (suspicion ⇒ exclusion).
    pub fd_timeout: TimeDelta,
    /// Application state transferred on (re-)join, in bytes (§4.3).
    pub state_size: usize,
    /// Whether a killed (wrongly excluded) process automatically re-joins.
    pub auto_rejoin: bool,
    /// Throttle for the loss-repair paths (re-pushing own unsequenced data
    /// to the sequencer, asking it to backfill missed orders). The original
    /// Isis assumed reliable FIFO links; on lossy/partitioned topologies the
    /// repair traffic stands in for that substrate.
    pub retrans_interval: TimeDelta,
}

impl Default for IsisConfig {
    fn default() -> Self {
        IsisConfig {
            heartbeat_interval: TimeDelta::from_millis(5),
            fd_timeout: TimeDelta::from_millis(100),
            state_size: 0,
            auto_rejoin: true,
            retrans_interval: TimeDelta::from_millis(10),
        }
    }
}

impl IsisConfig {
    /// A timeout profile derived from the topology's RTT bound: on a LAN the
    /// defaults are returned unchanged (every derived value floors at its
    /// default), while on WAN topologies the heartbeat stretches with the
    /// propagation delay and the exclusion timeout clears several round
    /// trips — below that, the perfect-failure-detector emulation suspects
    /// (and kills) peers that are merely far away, and the stack thrashes
    /// through view changes instead of converging.
    pub fn for_topology(topology: &Topology) -> Self {
        let d = topology.max_one_way_delay();
        let defaults = Self::default();
        IsisConfig {
            heartbeat_interval: defaults.heartbeat_interval.max(d.div(4)),
            // 4 one-way delays (two round trips) plus heartbeat slack: a
            // heartbeat must be able to lose one race with the jitter
            // without its sender being expelled.
            fd_timeout: defaults.fd_timeout.max(d.saturating_mul(4) + d),
            retrans_interval: defaults.retrans_interval.max(d.saturating_mul(3)),
            ..defaults
        }
    }
}

/// Wire + local events of the Isis stack.
#[derive(Clone, Debug)]
pub enum IsisEvent {
    // -- wire --
    /// Failure-detection heartbeat.
    Heartbeat,
    /// Application data diffused to the group (awaiting sequencing).
    Data {
        /// Message identity.
        id: IsisMsgId,
        /// Payload handle (interned in the simulation arena — flush
        /// reports, re-orders and re-deliveries all share one allocation).
        payload: PayloadRef,
    },
    /// Sequencer's ordering decision: `id` is the `seq`-th message of the
    /// view.
    Order {
        /// View the ordering belongs to.
        vid: u64,
        /// Position in the view's delivery order.
        seq: u64,
        /// The ordered message.
        id: IsisMsgId,
    },
    /// Coordinator starts a view change (flush begins; senders block).
    ViewProposal {
        /// Proposed view number.
        vid: u64,
        /// Proposed membership.
        members: Vec<ProcessId>,
    },
    /// A member's unstable messages for the flush.
    FlushReport {
        /// The proposed view this report answers.
        vid: u64,
        /// Messages not yet delivered at the reporter (id, payload handle,
        /// and the sequencer position if one was assigned).
        unstable: Vec<(IsisMsgId, PayloadRef, Option<u64>)>,
    },
    /// Coordinator commits the new view with the agreed flush deliveries.
    /// Boxed: this rare, fat variant (two vectors) must not widen the hot
    /// event enum past the cache-line budget.
    NewView(Box<NewViewData>),
    /// A process (re-)requests membership.
    JoinRequest,
    /// A member asks the coordinator to expel `target` (scripted removal —
    /// in Isis, removal *is* exclusion, driven through the same flush).
    RemoveRequest {
        /// The member to expel.
        target: ProcessId,
    },
    /// State transfer to a (re-)joining process.
    StateTransfer {
        /// Size stands in for real state (§4.3's costly transfer).
        state: Bytes,
    },
    /// Loss repair: ask the sequencer to re-send its ordering decisions (and
    /// the data they refer to) from position `from` of view `vid` on. The
    /// original stack assumed reliable FIFO links; this stands in for their
    /// retransmission on lossy topologies.
    Repair {
        /// View whose order stream stalled.
        vid: u64,
        /// First order position the requester is missing.
        from: u64,
    },

    // -- application ops --
    /// Atomically broadcast `payload` (blocked while a flush is running —
    /// sending view delivery).
    Abcast(PayloadRef),
    /// Ask to join via the current coordinator.
    Join,
    /// Ask the coordinator to remove a member.
    Remove(ProcessId),

    // -- outputs --
    /// An ordered delivery.
    Deliver {
        /// Message identity.
        id: IsisMsgId,
        /// Payload handle (resolve via [`IsisSim::resolve`]).
        payload: PayloadRef,
        /// View in which the delivery happened.
        vid: u64,
    },
    /// A new view was installed.
    ViewInstalled {
        /// View number.
        vid: u64,
        /// Membership (head = sequencer).
        members: Vec<ProcessId>,
    },
    /// Send-blocking marker: `true` when the flush blocks senders, `false`
    /// when the new view unblocks them (measured by experiment E4).
    Blocked(bool),
    /// This process discovered it was excluded: Isis semantics — it is
    /// killed (and will re-join if configured).
    Killed,
    /// This process was removed *by request* (scripted removal): killed like
    /// any excluded process, but it stays out — no auto re-join.
    Removed,
    /// Re-join completed (state transfer received).
    Rejoined,
}

// Events are moved through every scheduler slot and dispatch; boxing the
// reformation-time fat variants keeps the enum inside one cache line.
const _: () = assert!(
    std::mem::size_of::<IsisEvent>() <= 64,
    "IsisEvent outgrew one cache line; box the offending variant"
);

/// The payload of an [`IsisEvent::NewView`] commit.
#[derive(Clone, Debug)]
pub struct NewViewData {
    /// The new view number.
    pub vid: u64,
    /// The new membership (head = sequencer).
    pub members: Vec<ProcessId>,
    /// Messages to deliver before installing the view, in agreed order.
    pub deliver_first: Vec<(IsisMsgId, PayloadRef)>,
    /// Members expelled *by request* in this view change: they learn their
    /// exclusion is administrative and must not auto re-join.
    pub removed: Vec<ProcessId>,
}

impl Event for IsisEvent {
    fn kind(&self) -> &'static str {
        match self {
            IsisEvent::Heartbeat => "isis/heartbeat",
            IsisEvent::Data { .. } => "isis/data",
            IsisEvent::Order { .. } => "isis/order",
            IsisEvent::ViewProposal { .. } => "isis/view-proposal",
            IsisEvent::FlushReport { .. } => "isis/flush-report",
            IsisEvent::NewView { .. } => "isis/new-view",
            IsisEvent::JoinRequest => "isis/join-request",
            IsisEvent::RemoveRequest { .. } => "isis/remove-request",
            IsisEvent::StateTransfer { .. } => "isis/state-transfer",
            IsisEvent::Repair { .. } => "isis/repair",
            IsisEvent::Abcast(_) => "op/abcast",
            IsisEvent::Join => "op/join",
            IsisEvent::Remove(_) => "op/remove",
            IsisEvent::Deliver { .. } => "out/deliver",
            IsisEvent::ViewInstalled { .. } => "out/view",
            IsisEvent::Blocked(_) => "out/blocked",
            IsisEvent::Killed => "out/killed",
            IsisEvent::Removed => "out/removed",
            IsisEvent::Rejoined => "out/rejoined",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            IsisEvent::Heartbeat => 16,
            IsisEvent::Data { payload, .. } => 28 + payload.len(),
            IsisEvent::Order { .. } => 36,
            IsisEvent::ViewProposal { members, .. } => 16 + 4 * members.len(),
            IsisEvent::FlushReport { unstable, .. } => {
                16 + unstable.iter().map(|(_, p, _)| 24 + p.len()).sum::<usize>()
            }
            IsisEvent::NewView(nv) => {
                16 + 4 * nv.members.len()
                    + nv.deliver_first
                        .iter()
                        .map(|(_, p)| 16 + p.len())
                        .sum::<usize>()
            }
            IsisEvent::JoinRequest => 16,
            IsisEvent::RemoveRequest { .. } => 20,
            IsisEvent::StateTransfer { state } => 16 + state.len(),
            IsisEvent::Repair { .. } => 32,
            _ => 64,
        }
    }
}

#[derive(Debug, PartialEq)]
enum Mode {
    /// Normal operation.
    Steady,
    /// Flush in progress (senders blocked).
    Flushing,
    /// Excluded and killed; awaiting re-join (if configured).
    Dead,
}

/// The monolithic Isis-style stack as one component (the paper calls these
/// systems *monolithic* — the composition is internal).
pub struct IsisStack {
    me: ProcessId,
    config: IsisConfig,
    /// Current view.
    vid: u64,
    members: Vec<ProcessId>,
    member: bool,
    mode: Mode,
    /// FD state (integrated with membership — the traditional coupling).
    /// Indexed by raw process id: heartbeats arrive constantly, so this is
    /// a dense table rather than a hash map.
    last_heard: Vec<Option<Time>>,
    /// Sender side: next per-process message number.
    next_msg: u64,
    /// Sequencer side: next order number in this view.
    next_order: u64,
    /// Receiver side: messages awaiting their order, and orders awaiting
    /// their message.
    unordered: BTreeMap<IsisMsgId, PayloadRef>,
    orders: BTreeMap<u64, IsisMsgId>,
    next_deliver: u64,
    delivered: HashSet<IsisMsgId>,
    /// Payloads of delivered messages, kept to serve [`IsisEvent::Repair`]
    /// backfills (handles are 12 bytes; the bytes live once in the arena).
    archive: HashMap<IsisMsgId, PayloadRef>,
    /// Every ordering decision of the current view, by position — unlike
    /// [`orders`](Self::orders) this log is not drained on delivery, so the
    /// sequencer can re-serve decisions a lossy link swallowed.
    order_log: BTreeMap<u64, IsisMsgId>,
    /// Scan timestamp of the loss-repair paths.
    last_repair: Time,
    /// Own unsequenced messages as of the previous repair scan.
    repair_own: Vec<IsisMsgId>,
    /// Delivery cursor as of the previous repair scan.
    repair_cursor: u64,
    /// Whether the order stream was past the cursor at the previous scan.
    repair_stalled: bool,
    /// Abcasts issued while blocked (sending view delivery queues them).
    send_queue: VecDeque<PayloadRef>,
    /// Coordinator flush state.
    flush_vid: u64,
    flush_members: Vec<ProcessId>,
    flush_reports: BTreeMap<ProcessId, Vec<(IsisMsgId, PayloadRef, Option<u64>)>>,
    /// Members the in-flight flush expels by request.
    flush_removed: Vec<ProcessId>,
    /// The proposal this process is answering as a flush *participant*
    /// (`(vid, coordinator)`), so a lost report can be re-sent.
    flush_answering: Option<(u64, ProcessId)>,
    /// Throttle timestamp of the flush/rejoin nudges (lost-message
    /// retransmission for the view-change protocol itself).
    last_nudge: Time,
    /// Where a killed process sent its re-join request (re-sent on loss).
    rejoin_target: Option<ProcessId>,
    /// The last committed view (with its flush deliveries), kept so a
    /// member can teach it to a process whose commit message was lost.
    last_commit: Option<NewViewData>,
    /// Joins waiting for the next view change (coordinator side).
    pending_joins: BTreeSet<ProcessId>,
    /// Scripted removals waiting for the next view change (coordinator
    /// side).
    pending_removals: BTreeSet<ProcessId>,
    started_at: Time,
}

impl IsisStack {
    /// Creates a stack; founding members pass the initial membership,
    /// late joiners pass `None`.
    pub fn new(me: ProcessId, initial: Option<Vec<ProcessId>>, config: IsisConfig) -> Self {
        let (members, member) = match initial {
            Some(m) => {
                let is_member = m.contains(&me);
                (m, is_member)
            }
            None => (Vec::new(), false),
        };
        IsisStack {
            me,
            config,
            vid: 0,
            members,
            member,
            mode: Mode::Steady,
            last_heard: Vec::new(),
            next_msg: 0,
            next_order: 0,
            unordered: BTreeMap::new(),
            orders: BTreeMap::new(),
            next_deliver: 0,
            delivered: HashSet::new(),
            archive: HashMap::new(),
            order_log: BTreeMap::new(),
            last_repair: Time::ZERO,
            repair_own: Vec::new(),
            repair_cursor: 0,
            repair_stalled: false,
            send_queue: VecDeque::new(),
            flush_vid: 0,
            flush_members: Vec::new(),
            flush_reports: BTreeMap::new(),
            flush_removed: Vec::new(),
            flush_answering: None,
            last_nudge: Time::ZERO,
            rejoin_target: None,
            last_commit: None,
            pending_joins: BTreeSet::new(),
            pending_removals: BTreeSet::new(),
            started_at: Time::ZERO,
        }
    }

    fn sequencer(&self) -> Option<ProcessId> {
        self.members.first().copied()
    }

    /// The coordinator is the smallest member this process does not suspect.
    fn coordinator(&self, now: Time) -> Option<ProcessId> {
        self.members
            .iter()
            .copied()
            .find(|&p| p == self.me || !self.suspects(p, now))
    }

    fn suspects(&self, p: ProcessId, now: Time) -> bool {
        let last = self
            .last_heard
            .get(p.index())
            .copied()
            .flatten()
            .unwrap_or(self.started_at);
        now.since(last) > self.config.fd_timeout
    }

    fn note_heard(&mut self, p: ProcessId, now: Time) {
        let idx = p.index();
        if idx >= self.last_heard.len() {
            self.last_heard.resize(idx + 1, None);
        }
        self.last_heard[idx] = Some(now);
    }

    fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.members.iter().copied().filter(move |&p| p != self.me)
    }

    fn broadcast(&self, ev: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        // One broadcast envelope instead of a per-peer clone loop.
        ctx.send_to_all(self.others(), "isis", ev);
    }

    fn do_abcast(&mut self, payload: PayloadRef, ctx: &mut Context<'_, IsisEvent>) {
        let id = (self.me, self.next_msg);
        self.next_msg += 1;
        let data = IsisEvent::Data { id, payload };
        self.broadcast(data, ctx);
        self.accept_data(id, payload, ctx);
    }

    fn accept_data(
        &mut self,
        id: IsisMsgId,
        payload: PayloadRef,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if self.delivered.contains(&id) || self.unordered.contains_key(&id) {
            return;
        }
        self.unordered.insert(id, payload);
        // Fixed sequencer: the view head assigns the order.
        if self.member && self.mode == Mode::Steady && self.sequencer() == Some(self.me) {
            let seq = self.next_order;
            self.next_order += 1;
            let order = IsisEvent::Order {
                vid: self.vid,
                seq,
                id,
            };
            self.broadcast(order.clone(), ctx);
            self.on_order(self.vid, seq, id, ctx);
        }
        self.try_deliver(ctx);
    }

    fn on_order(&mut self, vid: u64, seq: u64, id: IsisMsgId, ctx: &mut Context<'_, IsisEvent>) {
        if vid != self.vid {
            return; // stale view: the flush re-orders in-flight messages
        }
        self.orders.insert(seq, id);
        self.order_log.insert(seq, id);
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        if !self.member || self.mode == Mode::Dead {
            return;
        }
        while let Some(&id) = self.orders.get(&self.next_deliver) {
            let Some(payload) = self.unordered.remove(&id) else {
                break; // order known, data still in flight
            };
            self.orders.remove(&self.next_deliver);
            self.next_deliver += 1;
            self.delivered.insert(id);
            self.archive.insert(id, payload);
            ctx.output(IsisEvent::Deliver {
                id,
                payload,
                vid: self.vid,
            });
        }
    }

    /// Loss repair (piggybacked on the heartbeat timer, scanned every
    /// `retrans_interval`): re-push own data the sequencer has not ordered
    /// yet, and ask the sequencer to backfill ordering decisions our cursor
    /// is stuck behind. A message must look stuck across **two** consecutive
    /// scans before anything is sent, so on loss-free links (where ordering
    /// completes within one scan period) neither path ever fires and the
    /// steady-state event stream is untouched.
    fn repair_tick(&mut self, now: Time, ctx: &mut Context<'_, IsisEvent>) {
        if self.mode != Mode::Steady || now.since(self.last_repair) <= self.config.retrans_interval
        {
            return;
        }
        self.last_repair = now;
        let own_now: Vec<IsisMsgId> = self
            .unordered
            .keys()
            .copied()
            .filter(|id| id.0 == self.me)
            .collect();
        // Stall evidence: either the order stream visibly moved past our
        // cursor, or we hold *any* undelivered data at an unmoving cursor —
        // the latter covers a lost Order for the tail of the stream, where
        // no later order exists to prove the gap (and where a Data re-push
        // alone is silently deduplicated by the sequencer).
        let stalled_now = self
            .order_log
            .keys()
            .next_back()
            .is_some_and(|&last| last >= self.next_deliver)
            || !self.unordered.is_empty();
        if let Some(seq) = self.sequencer().filter(|&s| s != self.me) {
            // Own messages unsequenced since the previous scan: the Data may
            // never have reached the sequencer — push it again (receivers
            // dedup on message id).
            for &id in own_now.iter().filter(|id| self.repair_own.contains(id)) {
                if let Some(&payload) = self.unordered.get(&id) {
                    ctx.send(seq, "isis", IsisEvent::Data { id, payload });
                }
            }
            // Stuck across two consecutive scans: an Order (or its Data)
            // was lost — ask for a backfill.
            if stalled_now && self.repair_stalled && self.repair_cursor == self.next_deliver {
                ctx.send(
                    seq,
                    "isis",
                    IsisEvent::Repair {
                        vid: self.vid,
                        from: self.next_deliver,
                    },
                );
            }
        }
        self.repair_own = own_now;
        self.repair_cursor = self.next_deliver;
        self.repair_stalled = stalled_now;
    }

    /// Sequencer side of [`IsisEvent::Repair`]: re-send order decisions from
    /// `from` on (and the data they refer to, where still known).
    fn serve_repair(
        &mut self,
        from: ProcessId,
        vid: u64,
        pos: u64,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if vid != self.vid || !self.member || self.mode != Mode::Steady {
            return;
        }
        for (&seq, &id) in self.order_log.range(pos..).take(64) {
            ctx.send(from, "isis", IsisEvent::Order { vid, seq, id });
            let payload = self
                .archive
                .get(&id)
                .or_else(|| self.unordered.get(&id))
                .copied();
            if let Some(payload) = payload {
                ctx.send(from, "isis", IsisEvent::Data { id, payload });
            }
        }
    }

    // -- view changes (membership + view synchrony) -------------------------

    /// Coordinator: start a flush towards a new membership.
    ///
    /// Primary-partition rule: a successor view must contain a majority of
    /// the current one (a minority partition blocks rather than forming its
    /// own view — Isis §2.1.1).
    fn start_view_change(&mut self, new_members: Vec<ProcessId>, ctx: &mut Context<'_, IsisEvent>) {
        if new_members == self.members && self.pending_joins.is_empty() {
            return;
        }
        let survivors = new_members
            .iter()
            .filter(|p| self.members.contains(p))
            .count();
        if survivors < self.members.len() / 2 + 1 {
            return; // minority: wait, do not split the brain
        }
        self.mode = Mode::Flushing;
        ctx.output(IsisEvent::Blocked(true));
        self.flush_vid = self.vid + 1;
        self.flush_removed = self
            .members
            .iter()
            .copied()
            .filter(|p| self.pending_removals.contains(p) && !new_members.contains(p))
            .collect();
        self.flush_members = new_members.clone();
        self.flush_reports.clear();
        let proposal = IsisEvent::ViewProposal {
            vid: self.flush_vid,
            members: new_members.clone(),
        };
        // Survivors of the current view participate in the flush.
        self.broadcast(proposal, ctx);
        // Our own report.
        let report = self.local_unstable();
        self.flush_reports.insert(self.me, report);
        self.maybe_commit_view(ctx);
    }

    fn local_unstable(&self) -> Vec<(IsisMsgId, PayloadRef, Option<u64>)> {
        // Positions come from the *undrained* order log: a reporter that
        // already saw the sequencer's decision for an undelivered message
        // must carry it into the flush, or the agreed order could
        // contradict deliveries other members already made from it.
        let seq_of: HashMap<IsisMsgId, u64> =
            self.order_log.iter().map(|(&s, &id)| (id, s)).collect();
        self.unordered
            .iter()
            .map(|(&id, &p)| (id, p, seq_of.get(&id).copied()))
            .collect()
    }

    fn on_view_proposal(
        &mut self,
        from: ProcessId,
        vid: u64,
        members: Vec<ProcessId>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if vid <= self.vid || !self.member {
            return;
        }
        if self.mode != Mode::Flushing {
            self.mode = Mode::Flushing;
            ctx.output(IsisEvent::Blocked(true));
        }
        let _ = members;
        self.flush_answering = Some((vid, from));
        let report = IsisEvent::FlushReport {
            vid,
            unstable: self.local_unstable(),
        };
        ctx.send(from, "isis", report);
    }

    fn on_flush_report(
        &mut self,
        from: ProcessId,
        vid: u64,
        unstable: Vec<(IsisMsgId, PayloadRef, Option<u64>)>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        if vid != self.flush_vid || self.mode != Mode::Flushing {
            // A report for a flush that already committed: the reporter
            // never saw the commit (lost on a lossy link) and is blocked —
            // teach it the committed view, flush deliveries included.
            if self.mode == Mode::Steady && vid <= self.vid {
                if let Some(nv) = self.last_commit.clone() {
                    ctx.send(from, "isis", IsisEvent::NewView(Box::new(nv)));
                }
            }
            return;
        }
        self.flush_reports.insert(from, unstable);
        self.maybe_commit_view(ctx);
    }

    /// Coordinator: once every surviving proposed member reported, compute
    /// the agreed flush deliveries and commit the view.
    fn maybe_commit_view(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        if self.mode != Mode::Flushing || self.flush_members.is_empty() {
            return;
        }
        let waiting_on: Vec<ProcessId> = self
            .flush_members
            .iter()
            .copied()
            .filter(|p| self.members.contains(p) && !self.flush_reports.contains_key(p))
            .collect();
        if !waiting_on.is_empty() {
            return;
        }
        // Agreed order for in-flight messages: sequencer positions first,
        // then unsequenced by id (view synchrony: same set, same order).
        // A reporter may hold a message without its ordering decision (the
        // Order was lost or partitioned away) while *this* process saw it —
        // consult our own order log before treating anything as
        // unsequenced, or the flush would re-order messages that members
        // already delivered at their sequenced positions.
        let own_seq: HashMap<IsisMsgId, u64> =
            self.order_log.iter().map(|(&s, &id)| (id, s)).collect();
        let mut sequenced: BTreeMap<u64, (IsisMsgId, PayloadRef)> = BTreeMap::new();
        let mut unsequenced: BTreeMap<IsisMsgId, PayloadRef> = BTreeMap::new();
        for report in self.flush_reports.values() {
            for &(id, payload, seq) in report {
                match seq.or_else(|| own_seq.get(&id).copied()) {
                    Some(s) => {
                        sequenced.insert(s, (id, payload));
                    }
                    None => {
                        unsequenced.insert(id, payload);
                    }
                }
            }
        }
        let mut deliver_first: Vec<(IsisMsgId, PayloadRef)> = sequenced.into_values().collect();
        for (id, p) in unsequenced {
            if !deliver_first.iter().any(|(i, _)| *i == id) {
                deliver_first.push((id, p));
            }
        }
        let new_view = IsisEvent::NewView(Box::new(NewViewData {
            vid: self.flush_vid,
            members: self.flush_members.clone(),
            deliver_first: deliver_first.clone(),
            removed: self.flush_removed.clone(),
        }));
        // Tell survivors and joiners alike.
        let mut targets: BTreeSet<ProcessId> = self
            .members
            .iter()
            .chain(self.flush_members.iter())
            .copied()
            .collect();
        targets.remove(&self.me);
        ctx.send_to_all(targets, "isis", new_view);
        // State transfer to joiners (the §4.3 cost).
        for &j in self.pending_joins.clone().iter() {
            if self.flush_members.contains(&j) {
                ctx.send(
                    j,
                    "isis",
                    IsisEvent::StateTransfer {
                        state: Bytes::from(vec![0u8; self.config.state_size]),
                    },
                );
            }
        }
        self.pending_joins.clear();
        // Removals carried out by this flush are done; the rest stay pending.
        let applied = self.flush_members.clone();
        self.pending_removals.retain(|t| applied.contains(t));
        self.install_view(
            self.flush_vid,
            self.flush_members.clone(),
            deliver_first,
            self.flush_removed.clone(),
            ctx,
        );
    }

    /// Coordinator: register a scripted removal and, when in steady state,
    /// start the view change that expels the target (plus any suspects and
    /// pending joiners, exactly as the failure-driven path would).
    fn note_removal(&mut self, target: ProcessId, ctx: &mut Context<'_, IsisEvent>) {
        self.pending_joins.remove(&target);
        self.pending_removals.insert(target);
        if self.member && self.mode == Mode::Steady {
            let mut next: Vec<ProcessId> = self
                .members
                .iter()
                .copied()
                .filter(|p| !self.pending_removals.contains(p))
                .collect();
            for &j in &self.pending_joins {
                if !next.contains(&j) {
                    next.push(j);
                }
            }
            self.start_view_change(next, ctx);
        }
    }

    fn install_view(
        &mut self,
        vid: u64,
        members: Vec<ProcessId>,
        deliver_first: Vec<(IsisMsgId, PayloadRef)>,
        removed: Vec<ProcessId>,
        ctx: &mut Context<'_, IsisEvent>,
    ) {
        // Deliver the flush set (view synchrony), skipping what we delivered.
        for &(id, payload) in &deliver_first {
            if self.delivered.insert(id) {
                self.unordered.remove(&id);
                self.archive.insert(id, payload);
                ctx.output(IsisEvent::Deliver {
                    id,
                    payload,
                    vid: self.vid,
                });
            }
        }
        self.flush_answering = None;
        // Any install supersedes an in-flight flush this process was
        // coordinating: stale coordinator state must not make a later
        // *participant* nudge re-commit an old view.
        self.flush_members.clear();
        self.flush_reports.clear();
        self.flush_removed.clear();
        if !members.contains(&self.me) {
            // Excluded: Isis kills the process (§4.3). A scripted removal is
            // the same exclusion, minus the re-join.
            self.mode = Mode::Dead;
            self.member = false;
            if removed.contains(&self.me) {
                ctx.output(IsisEvent::Removed);
            } else {
                ctx.output(IsisEvent::Killed);
                if self.config.auto_rejoin {
                    if let Some(&coord) = members.first() {
                        self.rejoin_target = Some(coord);
                        ctx.send(coord, "isis", IsisEvent::JoinRequest);
                    }
                }
            }
            return;
        }
        self.vid = vid;
        self.members = members.clone();
        self.member = true;
        self.mode = Mode::Steady;
        self.rejoin_target = None;
        self.last_commit = Some(NewViewData {
            vid,
            members: members.clone(),
            deliver_first,
            removed,
        });
        self.unordered.clear();
        self.orders.clear();
        self.order_log.clear();
        // The repair archive only serves the current view's order log:
        // entries from earlier views can never be looked up again, so drop
        // them with it (bounds the map per view instead of per run).
        self.archive.clear();
        self.next_order = 0;
        self.next_deliver = 0;
        // Fresh FD horizon for the new view.
        let now = ctx.now();
        for &m in &members {
            self.note_heard(m, now);
        }
        ctx.output(IsisEvent::ViewInstalled { vid, members });
        ctx.output(IsisEvent::Blocked(false));
        // Sending view delivery: queued sends go out in the new view.
        let queued: Vec<PayloadRef> = self.send_queue.drain(..).collect();
        for payload in queued {
            self.do_abcast(payload, ctx);
        }
    }
}

impl Component<IsisEvent> for IsisStack {
    fn name(&self) -> &'static str {
        "isis"
    }

    fn on_start(&mut self, ctx: &mut Context<'_, IsisEvent>) {
        self.started_at = ctx.now();
        ctx.set_timer(self.config.heartbeat_interval);
    }

    fn on_event(&mut self, event: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        match event {
            IsisEvent::Abcast(payload) => {
                if !self.member || self.mode != Mode::Steady {
                    // Sending view delivery: block (queue) during a flush.
                    self.send_queue.push_back(payload);
                } else {
                    self.do_abcast(payload, ctx);
                }
            }
            IsisEvent::Join => {
                // Contact the lowest-id process we know of.
                if let Some(&coord) = self.members.first().filter(|&&c| c != self.me) {
                    ctx.send(coord, "isis", IsisEvent::JoinRequest);
                } else {
                    ctx.send(ProcessId::new(0), "isis", IsisEvent::JoinRequest);
                }
            }
            IsisEvent::Remove(target) => {
                if !self.member || self.mode == Mode::Dead {
                    return;
                }
                if self.coordinator(ctx.now()) == Some(self.me) {
                    self.note_removal(target, ctx);
                } else if let Some(coord) = self.coordinator(ctx.now()) {
                    ctx.send(coord, "isis", IsisEvent::RemoveRequest { target });
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, from: ProcessId, event: IsisEvent, ctx: &mut Context<'_, IsisEvent>) {
        if self.mode == Mode::Dead {
            // A killed process only listens for its re-admission.
            match event {
                IsisEvent::NewView(nv) if nv.members.contains(&self.me) => {
                    self.delivered.clear();
                    self.install_view(nv.vid, nv.members, nv.deliver_first, nv.removed, ctx);
                }
                IsisEvent::StateTransfer { .. } => {
                    ctx.output(IsisEvent::Rejoined);
                }
                _ => {}
            }
            return;
        }
        match event {
            IsisEvent::Heartbeat => {
                self.note_heard(from, ctx.now());
                // A heartbeat from a process outside our view means it holds
                // a stale view (it was excluded while unreachable): notify it
                // so it learns its exclusion (and gets killed, Isis-style).
                if self.member
                    && !self.members.contains(&from)
                    && !self.pending_joins.contains(&from)
                    && self.coordinator(ctx.now()) == Some(self.me)
                {
                    ctx.send(
                        from,
                        "isis",
                        IsisEvent::NewView(Box::new(NewViewData {
                            vid: self.vid,
                            members: self.members.clone(),
                            deliver_first: Vec::new(),
                            removed: Vec::new(),
                        })),
                    );
                }
            }
            IsisEvent::Data { id, payload } => self.accept_data(id, payload, ctx),
            IsisEvent::Order { vid, seq, id } => self.on_order(vid, seq, id, ctx),
            IsisEvent::ViewProposal { vid, members } => {
                self.on_view_proposal(from, vid, members, ctx)
            }
            IsisEvent::FlushReport { vid, unstable } => {
                self.on_flush_report(from, vid, unstable, ctx)
            }
            IsisEvent::NewView(nv) if nv.vid > self.vid => {
                self.install_view(nv.vid, nv.members, nv.deliver_first, nv.removed, ctx);
            }
            IsisEvent::JoinRequest => {
                // A fresh join overrides a stale pending removal of the same
                // process (otherwise a rejoiner would be expelled on sight).
                self.pending_removals.remove(&from);
                self.pending_joins.insert(from);
                if self.member && self.coordinator(ctx.now()) == Some(self.me) {
                    let mut m: Vec<ProcessId> = self
                        .members
                        .iter()
                        .copied()
                        .filter(|p| !self.pending_removals.contains(p))
                        .collect();
                    if !m.contains(&from) {
                        m.push(from);
                    }
                    self.start_view_change(m, ctx);
                }
            }
            IsisEvent::RemoveRequest { target } => {
                if self.member && self.coordinator(ctx.now()) == Some(self.me) {
                    self.note_removal(target, ctx);
                } else {
                    self.pending_removals.insert(target);
                }
            }
            IsisEvent::Repair { vid, from: pos } => self.serve_repair(from, vid, pos, ctx),
            IsisEvent::StateTransfer { .. } => ctx.output(IsisEvent::Rejoined),
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, IsisEvent>) {
        ctx.set_timer(self.config.heartbeat_interval);
        let now = ctx.now();
        if self.mode == Mode::Dead {
            // A killed process whose re-join request was lost would stay
            // dead forever: re-send it until re-admitted.
            if let Some(coord) = self.rejoin_target {
                if now.since(self.last_nudge) > self.config.retrans_interval {
                    self.last_nudge = now;
                    ctx.send(coord, "isis", IsisEvent::JoinRequest);
                }
            }
            return;
        }
        if !self.member {
            return;
        }
        if self.mode == Mode::Flushing && now.since(self.last_nudge) > self.config.retrans_interval
        {
            // The flush protocol itself assumed reliable links: re-send the
            // proposal to members whose report is missing (coordinator) or
            // our report to the coordinator (participant) so one lost
            // message cannot block the view change forever.
            self.last_nudge = now;
            if !self.flush_members.is_empty() {
                // A participant suspected *mid-flush* will never report:
                // restart the view change without it (it is excluded like
                // any other suspect; it re-joins through kill + state
                // transfer rather than being retained with a hole in its
                // delivery stream).
                let suspected: Vec<ProcessId> = self
                    .flush_members
                    .iter()
                    .copied()
                    .filter(|&p| {
                        p != self.me
                            && !self.flush_reports.contains_key(&p)
                            && self.suspects(p, now)
                    })
                    .collect();
                if !suspected.is_empty() {
                    let next: Vec<ProcessId> = self
                        .flush_members
                        .iter()
                        .copied()
                        .filter(|p| !suspected.contains(p))
                        .collect();
                    let survivors = next.iter().filter(|p| self.members.contains(p)).count();
                    if survivors > self.members.len() / 2 {
                        self.flush_members = next;
                        self.maybe_commit_view(ctx);
                    }
                }
                if self.mode == Mode::Flushing {
                    let waiting: Vec<ProcessId> = self
                        .flush_members
                        .iter()
                        .copied()
                        .filter(|p| self.members.contains(p) && !self.flush_reports.contains_key(p))
                        .collect();
                    for p in waiting {
                        ctx.send(
                            p,
                            "isis",
                            IsisEvent::ViewProposal {
                                vid: self.flush_vid,
                                members: self.flush_members.clone(),
                            },
                        );
                    }
                }
            } else if let Some((vid, coord)) = self.flush_answering {
                if self.suspects(coord, now) {
                    // The flush coordinator died mid-flush: abandon the
                    // flush and return to steady state, so the ordinary
                    // suspicion path can elect a successor and run a fresh
                    // view change (otherwise the group nudges a corpse
                    // forever, blocked). If the coordinator was merely slow,
                    // its commit still reaches us as a NewView.
                    self.flush_answering = None;
                    self.mode = Mode::Steady;
                    ctx.output(IsisEvent::Blocked(false));
                    let queued: Vec<PayloadRef> = self.send_queue.drain(..).collect();
                    for payload in queued {
                        self.do_abcast(payload, ctx);
                    }
                } else {
                    ctx.send(
                        coord,
                        "isis",
                        IsisEvent::FlushReport {
                            vid,
                            unstable: self.local_unstable(),
                        },
                    );
                }
            }
        }
        ctx.send_to_all(self.others(), "isis", IsisEvent::Heartbeat);
        self.repair_tick(now, ctx);
        // The traditional coupling: suspicion IS exclusion. The coordinator
        // (lowest unsuspected member) reacts to any suspicion — or a pending
        // scripted removal — by starting a view change that expels them.
        if self.mode == Mode::Steady && self.coordinator(now) == Some(self.me) {
            let survivors: Vec<ProcessId> = self
                .members
                .iter()
                .copied()
                .filter(|&p| {
                    (p == self.me || !self.suspects(p, now)) && !self.pending_removals.contains(&p)
                })
                .collect();
            if survivors.len() != self.members.len() || !self.pending_joins.is_empty() {
                let mut next = survivors;
                for &j in &self.pending_joins {
                    if !next.contains(&j) {
                        next.push(j);
                    }
                }
                self.start_view_change(next, ctx);
            }
        }
    }
}

/// Simulation harness for groups running the Isis-style stack; mirrors
/// `gcs_core::GroupSim` so experiments can swap architectures.
pub struct IsisSim {
    world: SimWorld<IsisEvent>,
    /// Payload arena: interned at injection, handles everywhere below.
    arena: SharedArena,
    n: usize,
    /// Abcast operations accepted for injection (backpressure ledger).
    offered: u64,
    /// Optional bound on the injection-time backlog (`None` = unbounded).
    queue_capacity: Option<usize>,
    /// Highest backlog observed at an accepted injection.
    queue_high_water: usize,
}

impl IsisSim {
    /// Creates a group of `n` founding members on a loss-free LAN (the
    /// substrate Isis assumed), mirroring `gcs_core::GroupSim::new`.
    pub fn new(n: usize, config: IsisConfig, seed: u64) -> Self {
        Self::with_sim(n, 0, config, SimConfig::lan(seed))
    }

    /// Creates `n` founding members plus `joiners` processes that start
    /// outside the group (activate them with [`join_at`](Self::join_at)).
    pub fn with_joiners(n: usize, joiners: usize, config: IsisConfig, seed: u64) -> Self {
        Self::with_sim(n, joiners, config, SimConfig::lan(seed))
    }

    /// Full control over the simulation configuration (link model, trace
    /// sink, seed). Note the stack assumes reliable FIFO links; lossy
    /// topologies model conditions the original systems did not run on.
    pub fn with_sim(n: usize, joiners: usize, config: IsisConfig, sim: SimConfig) -> Self {
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let mut world = SimWorld::new(sim);
        for _ in 0..n {
            let m = members.clone();
            world.add_node(|id| {
                Process::builder(id)
                    .with(IsisStack::new(id, Some(m), config))
                    .build()
            });
        }
        for _ in 0..joiners {
            world.add_node(|id| {
                Process::builder(id)
                    .with(IsisStack::new(id, None, config))
                    .build()
            });
        }
        IsisSim {
            world,
            arena: SharedArena::new(),
            n: n + joiners,
            offered: 0,
            queue_capacity: None,
            queue_high_water: 0,
        }
    }

    /// Bounds the injection-time backlog for `try_abcast`-style facade
    /// calls; `None` removes the bound.
    pub fn set_queue_capacity(&mut self, cap: Option<usize>) {
        self.queue_capacity = cap;
    }

    /// The configured backlog bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// The abcast backlog as seen from `p`: operations accepted minus trace
    /// outputs observed at `p` (approximate: occasional view-change outputs
    /// count as drained work). Meaningful for interleaved drivers.
    pub fn queue_depth(&self, p: ProcessId) -> usize {
        self.offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize
    }

    /// The highest [`queue_depth`](Self::queue_depth) observed at the
    /// moment an injection was accepted.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Number of processes (members + joiners).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group has no processes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Schedules an atomic broadcast (the payload is interned in the sim's
    /// arena; the stack moves handles).
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Schedules an atomic broadcast of an already-interned payload handle.
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.offered += 1;
        let backlog = self
            .offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize;
        if backlog > self.queue_high_water {
            self.queue_high_water = backlog;
        }
        self.world
            .inject_at(t, p, "isis", IsisEvent::Abcast(payload));
    }

    /// The payload arena backing this sim's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    /// Schedules a join request by an outsider (or killed process).
    pub fn join_at(&mut self, t: Time, p: ProcessId) {
        self.world.inject_at(t, p, "isis", IsisEvent::Join);
    }

    /// Schedules member `by` to request the removal of `target`: the request
    /// is routed to the coordinator, which expels the target through the
    /// ordinary exclusion flush. The target is killed Isis-style but —
    /// unlike a wrong suspicion — does not auto re-join.
    ///
    /// A removal that would shrink the view below a majority of its current
    /// size (e.g. removing one of two members) is *deferred*, not executed:
    /// the primary-partition rule guards every view change, administrative
    /// ones included, so the request stays pending until the membership can
    /// absorb it.
    pub fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        self.world
            .inject_at(t, by, "isis", IsisEvent::Remove(target));
    }

    /// Crashes `p` at `t`.
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.world.crash_at(t, p);
    }

    /// Runs until virtual time `t`.
    pub fn run_until(&mut self, t: Time) {
        self.world.run_until(t);
    }

    /// Runs until the event queue drains or `limit`; returns `true` only if
    /// the system quiesced. A live Isis group re-arms its heartbeat timer
    /// forever, so this returns `false` unless every process has crashed.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.world.run_to_quiescence(limit)
    }

    /// Direct access to the underlying simulation world.
    pub fn world(&self) -> &SimWorld<IsisEvent> {
        &self.world
    }

    /// Underlying world (fault injection, metrics).
    pub fn world_mut(&mut self) -> &mut SimWorld<IsisEvent> {
        &mut self.world
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.world.alive_flags()
    }

    /// The delivery trace.
    pub fn trace(&self) -> &Trace<IsisEvent> {
        self.world.trace()
    }

    /// Simulation metrics.
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// Per-process delivered payload sequences.
    pub fn delivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        self.world.trace().per_proc(self.n, |e| match e {
            IsisEvent::Deliver { payload, .. } => Some(self.arena.get(*payload).to_vec()),
            _ => None,
        })
    }

    /// Per-process installed views `(vid, members)`.
    pub fn views(&self) -> Vec<Vec<(u64, Vec<ProcessId>)>> {
        self.world.trace().per_proc(self.n, |e| match e {
            IsisEvent::ViewInstalled { vid, members } => Some((*vid, members.clone())),
            _ => None,
        })
    }

    /// Send-blocking windows per process: `(start, end)` pairs (E4).
    pub fn blocked_windows(&self, p: ProcessId) -> Vec<(Time, Time)> {
        let mut windows = Vec::new();
        let mut open: Option<Time> = None;
        for e in self.world.trace().of_proc(p) {
            match e.event {
                IsisEvent::Blocked(true) => open = open.or(Some(e.time)),
                IsisEvent::Blocked(false) => {
                    if let Some(s) = open.take() {
                        windows.push((s, e.time));
                    }
                }
                _ => {}
            }
        }
        windows
    }

    /// Times at which each process was killed / rejoined (E3).
    pub fn kill_and_rejoin_times(&self, p: ProcessId) -> (Option<Time>, Option<Time>) {
        let mut killed = None;
        let mut rejoined = None;
        for e in self.world.trace().of_proc(p) {
            match e.event {
                IsisEvent::Killed if killed.is_none() => killed = Some(e.time),
                IsisEvent::Rejoined if rejoined.is_none() => rejoined = Some(e.time),
                _ => {}
            }
        }
        (killed, rejoined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::{check_no_duplicates, check_prefix_consistency};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_total_order() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 1);
        for i in 0..10u32 {
            sim.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
        }
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 10);
        }
        check_prefix_consistency(&seqs).expect("sequencer total order");
        check_no_duplicates(&seqs).expect("no duplicates");
    }

    #[test]
    fn sequencer_crash_triggers_exclusion_view_change() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 2);
        sim.abcast_at(Time::from_millis(1), p(1), b"before".to_vec());
        sim.crash_at(Time::from_millis(20), p(0)); // p0 is the sequencer
        sim.abcast_at(Time::from_millis(300), p(1), b"after".to_vec());
        sim.run_until(Time::from_secs(1));
        let views = sim.views();
        // Survivors installed a view without p0; new sequencer is p1.
        for i in 1..3 {
            let (vid, members) = views[i].last().expect("view change");
            assert_eq!(*vid, 1);
            assert_eq!(members, &vec![p(1), p(2)]);
        }
        let seqs = sim.delivered_payloads();
        assert!(seqs[1].contains(&b"after".to_vec()));
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn flush_blocks_senders_sending_view_delivery() {
        let mut sim = IsisSim::with_joiners(3, 1, IsisConfig::default(), 3);
        sim.join_at(Time::from_millis(10), p(3));
        sim.run_until(Time::from_secs(1));
        // The coordinator (p0) blocked during the flush.
        let windows = sim.blocked_windows(p(0));
        assert_eq!(windows.len(), 1, "one view change, one blocking window");
        let (s, e) = windows[0];
        assert!(e > s, "non-empty blocking window");
        // The joiner is in the final view everywhere.
        for i in 0..3 {
            let (_, members) = sim.views()[i].last().expect("view").clone();
            assert!(members.contains(&p(3)));
        }
    }

    #[test]
    fn abcast_during_flush_is_queued_not_lost() {
        let mut sim = IsisSim::with_joiners(3, 1, IsisConfig::default(), 4);
        sim.join_at(Time::from_millis(10), p(3));
        // Send while the flush is (likely) in progress.
        sim.abcast_at(Time::from_millis(12), p(1), b"queued".to_vec());
        sim.run_until(Time::from_secs(1));
        let seqs = sim.delivered_payloads();
        for i in 0..3 {
            assert!(
                seqs[i].contains(&b"queued".to_vec()),
                "p{i} delivers the queued send"
            );
        }
    }

    #[test]
    fn wrong_suspicion_kills_and_rejoins_with_state_transfer() {
        let mut config = IsisConfig::default();
        config.state_size = 64 * 1024;
        let mut sim = IsisSim::new(3, config, 5);
        // p2 is unreachable for a while — alive, but suspected: the
        // traditional architecture excludes it (perfect-FD emulation), it is
        // killed, and must re-join with a full state transfer (§4.3).
        sim.world_mut()
            .partition_at(Time::from_millis(50), vec![vec![p(0), p(1)], vec![p(2)]]);
        sim.world_mut().heal_at(Time::from_millis(400));
        sim.run_until(Time::from_secs(3));
        let (killed, rejoined) = sim.kill_and_rejoin_times(p(2));
        let k = killed.expect("p2 was wrongly excluded and killed");
        let r = rejoined.expect("p2 re-joined after the heal");
        assert!(r > k);
        // State transfer cost was paid.
        assert!(sim.metrics().sent_of_kind("isis/state-transfer") >= 1);
        // And the final view contains all three processes again.
        let (_, members) = sim.views()[0].last().expect("views installed").clone();
        assert_eq!(members.len(), 3);
    }

    #[test]
    fn scripted_removal_expels_without_rejoin() {
        let mut sim = IsisSim::new(4, IsisConfig::default(), 6);
        sim.abcast_at(Time::from_millis(1), p(3), b"pre".to_vec());
        // p1 (not the coordinator) requests the removal: the request must be
        // routed to p0 and applied through the flush.
        sim.remove_at(Time::from_millis(50), p(1), p(3));
        sim.abcast_at(Time::from_millis(300), p(1), b"post".to_vec());
        sim.run_until(Time::from_secs(2));
        for i in 0..3 {
            let (vid, members) = sim.views()[i].last().expect("view change").clone();
            assert!(vid >= 1);
            assert_eq!(members, vec![p(0), p(1), p(2)], "p{i} sees p3 expelled");
        }
        // The target was killed as Removed and stayed out (no auto re-join,
        // unlike a wrong suspicion).
        let trace = sim.trace();
        assert!(trace
            .of_proc(p(3))
            .any(|e| matches!(e.event, IsisEvent::Removed)));
        assert!(!trace
            .of_proc(p(3))
            .any(|e| matches!(e.event, IsisEvent::Rejoined)));
        // The stream survives the removal at all three survivors.
        let seqs = sim.delivered_payloads();
        for i in 0..3 {
            assert!(seqs[i].contains(&b"pre".to_vec()), "p{i}");
            assert!(seqs[i].contains(&b"post".to_vec()), "p{i}");
        }
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn wan_profile_floors_to_defaults_on_lan() {
        use gcs_sim::Topology;
        let lan = IsisConfig::for_topology(&Topology::lan());
        let d = IsisConfig::default();
        assert_eq!(lan.heartbeat_interval, d.heartbeat_interval);
        assert_eq!(lan.fd_timeout, d.fd_timeout);
        assert_eq!(lan.retrans_interval, d.retrans_interval);
        // On the 3-region WAN the exclusion timeout clears several RTTs.
        let wan = IsisConfig::for_topology(&Topology::wan_3region());
        assert!(wan.fd_timeout >= TimeDelta::from_millis(500));
        assert!(wan.heartbeat_interval > d.heartbeat_interval);
    }

    #[test]
    fn minority_partition_does_not_split_the_brain() {
        let mut sim = IsisSim::new(3, IsisConfig::default(), 8);
        // Everyone is isolated from everyone: no majority exists, so no new
        // view may form (primary-partition rule).
        sim.world_mut().partition_at(
            Time::from_millis(50),
            vec![vec![p(0)], vec![p(1)], vec![p(2)]],
        );
        sim.run_until(Time::from_secs(1));
        for i in 0..3 {
            assert!(
                sim.views()[i].is_empty(),
                "p{i} must not install a singleton view"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = IsisSim::new(3, IsisConfig::default(), seed);
            for i in 0..5u32 {
                sim.abcast_at(Time::from_millis(1 + i as u64), p(i % 3), vec![i as u8]);
            }
            sim.run_until(Time::from_secs(1));
            (sim.delivered_payloads(), sim.metrics().total_sent())
        };
        assert_eq!(run(9), run(9));
    }
}
