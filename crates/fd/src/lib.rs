//! # gcs-fd — failure detection, decoupled from membership
//!
//! A heartbeat failure detector in the style assumed by the paper's new
//! architecture (Fig 9): it sits directly on the *unreliable* transport and
//! serves **multiple clients with independent timeouts** — the paper's
//! §3.3.2 example has the consensus component suspecting after seconds while
//! the monitoring component suspects after minutes, through the
//! `start_stop_monitor` interface. Here each client registers a
//! [`MonitorClass`] with its own timeout and receives its own
//! [`FdOut::Suspect`] / [`FdOut::Restore`] transitions.
//!
//! In the simulated system model (eventually bounded delays between correct
//! processes; crashed processes stop sending), this heartbeat detector
//! implements ◇S for each class: crashed peers are permanently suspected
//! once their last heartbeat ages past the class timeout (strong
//! completeness), and wrong suspicions of correct peers are *transient* —
//! the next heartbeat restores them (eventual weak accuracy after delays
//! stabilize).
//!
//! The detector is sans-I/O, like every protocol in this repository: the
//! owner drives [`HeartbeatFd::on_tick`] and feeds received heartbeats in,
//! and carries out the returned [`FdOut`] instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use gcs_kernel::{ProcessId, Time, TimeDelta};

/// Identifies one registered suspicion client (timeout class).
///
/// The paper's architecture uses at least two: a small-timeout class for
/// consensus and a large-timeout class for monitoring/exclusion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MonitorClass(pub u16);

impl MonitorClass {
    /// Conventional class for the consensus component (small timeout).
    pub const CONSENSUS: MonitorClass = MonitorClass(0);
    /// Conventional class for the monitoring component (large timeout).
    pub const MONITORING: MonitorClass = MonitorClass(1);
}

/// An instruction produced by the failure detector for its owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdOut {
    /// Send a heartbeat to `to` over the unreliable transport.
    SendHeartbeat {
        /// Destination peer.
        to: ProcessId,
    },
    /// `peer` is now suspected by class `class`.
    Suspect {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The suspected peer.
        peer: ProcessId,
    },
    /// `peer` is no longer suspected by class `class` (a heartbeat arrived).
    Restore {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The restored peer.
        peer: ProcessId,
    },
}

#[derive(Clone, Copy, Debug)]
struct ClassState {
    timeout: TimeDelta,
}

/// A heartbeat failure detector with per-class timeouts.
#[derive(Debug)]
pub struct HeartbeatFd {
    me: ProcessId,
    interval: TimeDelta,
    peers: Vec<ProcessId>,
    classes: HashMap<MonitorClass, ClassState>,
    last_heard: HashMap<ProcessId, Time>,
    /// (class, peer) pairs currently suspected.
    suspected: HashMap<(MonitorClass, ProcessId), bool>,
    started_at: Time,
}

impl HeartbeatFd {
    /// Creates a detector for process `me` that emits heartbeats every
    /// `interval`.
    pub fn new(me: ProcessId, interval: TimeDelta) -> Self {
        HeartbeatFd {
            me,
            interval,
            peers: Vec::new(),
            classes: HashMap::new(),
            last_heard: HashMap::new(),
            suspected: HashMap::new(),
            started_at: Time::ZERO,
        }
    }

    /// The heartbeat emission interval (owner's tick period).
    pub fn interval(&self) -> TimeDelta {
        self.interval
    }

    /// Registers (or re-times) a suspicion class. (`start_monitor` in Fig 9.)
    pub fn register_class(&mut self, class: MonitorClass, timeout: TimeDelta) {
        self.classes.insert(class, ClassState { timeout });
    }

    /// Removes a suspicion class. (`stop_monitor` in Fig 9.)
    pub fn unregister_class(&mut self, class: MonitorClass) {
        self.classes.remove(&class);
        self.suspected.retain(|(c, _), _| *c != class);
    }

    /// Replaces the set of monitored peers (driven by `new_view`).
    ///
    /// `self` is filtered out; state about dropped peers is discarded.
    pub fn set_peers(&mut self, peers: impl IntoIterator<Item = ProcessId>, now: Time) {
        let me = self.me;
        self.peers = peers.into_iter().filter(|p| *p != me).collect();
        self.peers.sort_unstable();
        self.peers.dedup();
        let keep: std::collections::HashSet<ProcessId> = self.peers.iter().copied().collect();
        self.last_heard.retain(|p, _| keep.contains(p));
        self.suspected.retain(|(_, p), _| keep.contains(p));
        // Newly monitored peers get a grace period of one full timeout from
        // now rather than being instantly suspected.
        for &p in &self.peers {
            self.last_heard.entry(p).or_insert(now);
        }
        self.started_at = self.started_at.max(now);
    }

    /// The currently monitored peers.
    pub fn peers(&self) -> &[ProcessId] {
        &self.peers
    }

    /// Records a heartbeat from `from`; returns `Restore` transitions for
    /// every class that had suspected `from`.
    pub fn on_heartbeat(&mut self, from: ProcessId, now: Time) -> Vec<FdOut> {
        if !self.peers.contains(&from) {
            return Vec::new();
        }
        self.last_heard.insert(from, now);
        let mut out = Vec::new();
        let mut classes: Vec<MonitorClass> = self.classes.keys().copied().collect();
        classes.sort_unstable();
        for class in classes {
            if let Some(s) = self.suspected.get_mut(&(class, from)) {
                if *s {
                    *s = false;
                    out.push(FdOut::Restore { class, peer: from });
                }
            }
        }
        out
    }

    /// Periodic driver: emits heartbeats and evaluates timeouts.
    pub fn on_tick(&mut self, now: Time) -> Vec<FdOut> {
        let mut out: Vec<FdOut> =
            self.peers.iter().map(|&to| FdOut::SendHeartbeat { to }).collect();
        let mut classes: Vec<(MonitorClass, ClassState)> =
            self.classes.iter().map(|(c, s)| (*c, *s)).collect();
        classes.sort_unstable_by_key(|(c, _)| *c);
        for &peer in &self.peers {
            let last = self.last_heard.get(&peer).copied().unwrap_or(self.started_at);
            for &(class, state) in &classes {
                let suspected_now = now.since(last) > state.timeout;
                let entry = self.suspected.entry((class, peer)).or_insert(false);
                if suspected_now && !*entry {
                    *entry = true;
                    out.push(FdOut::Suspect { class, peer });
                } else if !suspected_now && *entry {
                    *entry = false;
                    out.push(FdOut::Restore { class, peer });
                }
            }
        }
        out
    }

    /// Whether `peer` is currently suspected by `class`.
    pub fn is_suspected(&self, class: MonitorClass, peer: ProcessId) -> bool {
        self.suspected.get(&(class, peer)).copied().unwrap_or(false)
    }

    /// All peers currently suspected by `class`, sorted.
    pub fn suspected_by(&self, class: MonitorClass) -> Vec<ProcessId> {
        let mut v: Vec<ProcessId> = self
            .suspected
            .iter()
            .filter(|((c, _), s)| *c == class && **s)
            .map(|((_, p), _)| *p)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn fd() -> HeartbeatFd {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.register_class(MonitorClass::MONITORING, TimeDelta::from_millis(500));
        fd.set_peers([P1, P2], Time::ZERO);
        fd
    }

    #[test]
    fn emits_heartbeats_to_all_peers() {
        let mut fd = fd();
        let out = fd.on_tick(Time::ZERO);
        let hbs: Vec<ProcessId> = out
            .iter()
            .filter_map(|o| match o {
                FdOut::SendHeartbeat { to } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(hbs, vec![P1, P2]);
    }

    #[test]
    fn small_timeout_class_suspects_first() {
        let mut fd = fd();
        fd.on_heartbeat(P1, Time::ZERO);
        fd.on_heartbeat(P2, Time::ZERO);
        // At 100 ms only the consensus class has timed out.
        let out = fd.on_tick(Time::from_millis(100));
        assert!(out.contains(&FdOut::Suspect { class: MonitorClass::CONSENSUS, peer: P1 }));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::MONITORING)
        ));
        // At 600 ms the monitoring class suspects too.
        let out = fd.on_tick(Time::from_millis(600));
        assert!(out.contains(&FdOut::Suspect { class: MonitorClass::MONITORING, peer: P1 }));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert_eq!(fd.suspected_by(MonitorClass::MONITORING), vec![P1, P2]);
    }

    #[test]
    fn heartbeat_restores_suspected_peer() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_heartbeat(P1, Time::from_millis(101));
        assert_eq!(out, vec![FdOut::Restore { class: MonitorClass::CONSENSUS, peer: P1 }]);
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
    }

    #[test]
    fn suspicion_transitions_fire_once() {
        let mut fd = fd();
        let first = fd.on_tick(Time::from_millis(100));
        assert!(first.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
        let second = fd.on_tick(Time::from_millis(110));
        assert!(!second.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
    }

    #[test]
    fn set_peers_gives_grace_period() {
        let mut fd = fd();
        let now = Time::from_secs(10);
        fd.set_peers([P1], now);
        // P1 was already monitored; its last-heard of t=0 is retained, so it
        // is suspected — but a brand new peer gets the grace period.
        let p9 = ProcessId::new(9);
        fd.set_peers([P1, p9], now);
        let out = fd.on_tick(now + TimeDelta::from_millis(10));
        assert!(out.contains(&FdOut::Suspect { class: MonitorClass::CONSENSUS, peer: P1 }));
        assert!(!out.contains(&FdOut::Suspect { class: MonitorClass::CONSENSUS, peer: p9 }));
    }

    #[test]
    fn removed_peer_state_is_dropped() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        fd.set_peers([P2], Time::from_millis(100));
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert!(fd.on_heartbeat(P1, Time::from_millis(101)).is_empty());
        assert_eq!(fd.peers(), &[P2]);
    }

    #[test]
    fn unregister_class_stops_its_suspicions() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        fd.unregister_class(MonitorClass::CONSENSUS);
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_tick(Time::from_millis(200));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::CONSENSUS)
        ));
    }

    #[test]
    fn self_is_never_monitored() {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.set_peers([ME, P1], Time::ZERO);
        assert_eq!(fd.peers(), &[P1]);
    }
}
