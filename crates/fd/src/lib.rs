//! # gcs-fd — failure detection, decoupled from membership
//!
//! A heartbeat failure detector in the style assumed by the paper's new
//! architecture (Fig 9): it sits directly on the *unreliable* transport and
//! serves **multiple clients with independent timeouts** — the paper's
//! §3.3.2 example has the consensus component suspecting after seconds while
//! the monitoring component suspects after minutes, through the
//! `start_stop_monitor` interface. Here each client registers a
//! [`MonitorClass`] with its own timeout and receives its own
//! [`FdOut::Suspect`] / [`FdOut::Restore`] transitions.
//!
//! In the simulated system model (eventually bounded delays between correct
//! processes; crashed processes stop sending), this heartbeat detector
//! implements ◇S for each class: crashed peers are permanently suspected
//! once their last heartbeat ages past the class timeout (strong
//! completeness), and wrong suspicions of correct peers are *transient* —
//! the next heartbeat restores them (eventual weak accuracy after delays
//! stabilize).
//!
//! The detector is sans-I/O, like every protocol in this repository: the
//! owner drives [`HeartbeatFd::on_tick`] and feeds received heartbeats in,
//! and carries out the returned [`FdOut`] instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_kernel::{ProcessId, Time, TimeDelta};

/// How the detector spreads aliveness information across the group.
///
/// All-pairs monitoring sends one heartbeat to every peer each interval —
/// n·(n−1) messages per period, which is what collapses simulation
/// throughput beyond a few dozen processes. Gossip monitoring sends to a
/// k-sized rotating ring segment instead (k ≈ log₂ n), piggybacking a small
/// digest of freshest last-heard times, so monitoring traffic is O(n·k) per
/// period. The price is detection latency: a peer is directly probed once
/// per rotation cycle, so class timeouts are extended by one cycle (see
/// [`HeartbeatFd::suspicion_bound`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FdMode {
    /// Heartbeat every peer each interval (classic ◇S heartbeat detector).
    #[default]
    AllPairs,
    /// Heartbeat a rotating ring segment of `fanout` peers each interval,
    /// carrying an alive digest. `fanout == 0` means "derive from the group
    /// size": ⌈log₂(n+1)⌉, at least 2.
    Gossip {
        /// Peers probed per interval (0 = auto, ≈ log₂ n).
        fanout: usize,
    },
}

impl FdMode {
    /// The concrete per-tick fanout for a group with `peers` monitored
    /// peers. All-pairs probes everyone; gossip resolves `fanout == 0` to
    /// ⌈log₂(peers+1)⌉ clamped to at least 2.
    pub fn fanout_for(&self, peers: usize) -> usize {
        match *self {
            FdMode::AllPairs => peers,
            FdMode::Gossip { fanout: 0 } => {
                let k = (usize::BITS - peers.leading_zeros()) as usize; // ⌈log2(peers+1)⌉
                k.clamp(2, peers.max(2))
            }
            FdMode::Gossip { fanout } => fanout.clamp(1, peers.max(1)),
        }
    }

    /// Ticks to cover every peer once: ⌈peers / fanout⌉ (1 for all-pairs).
    pub fn cycle_ticks(&self, peers: usize) -> u64 {
        if peers == 0 {
            return 1;
        }
        let k = self.fanout_for(peers);
        peers.div_ceil(k.max(1)) as u64
    }
}

/// Identifies one registered suspicion client (timeout class).
///
/// The paper's architecture uses at least two: a small-timeout class for
/// consensus and a large-timeout class for monitoring/exclusion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MonitorClass(pub u16);

impl MonitorClass {
    /// Conventional class for the consensus component (small timeout).
    pub const CONSENSUS: MonitorClass = MonitorClass(0);
    /// Conventional class for the monitoring component (large timeout).
    pub const MONITORING: MonitorClass = MonitorClass(1);
}

/// An instruction produced by the failure detector for its owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdOut {
    /// Send a heartbeat to `to` over the unreliable transport. In gossip
    /// mode the owner should attach the current [`HeartbeatFd::digest`] to
    /// the heartbeats of one tick.
    SendHeartbeat {
        /// Destination peer.
        to: ProcessId,
    },
    /// `peer` is now suspected by class `class`.
    Suspect {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The suspected peer.
        peer: ProcessId,
    },
    /// `peer` is no longer suspected by class `class` (a heartbeat arrived).
    Restore {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The restored peer.
        peer: ProcessId,
    },
}

#[derive(Clone, Copy, Debug)]
struct ClassState {
    timeout: TimeDelta,
}

/// A heartbeat failure detector with per-class timeouts.
///
/// Internal tables are small and dense (a handful of classes, a group's
/// worth of peers), so they are flat sorted vectors rather than hash maps —
/// `on_heartbeat` runs on every received heartbeat and allocates nothing.
#[derive(Debug)]
pub struct HeartbeatFd {
    me: ProcessId,
    interval: TimeDelta,
    mode: FdMode,
    peers: Vec<ProcessId>,
    /// Registered classes, sorted by class id.
    classes: Vec<(MonitorClass, ClassState)>,
    /// Last heartbeat per peer, indexed by raw process id.
    last_heard: Vec<Option<Time>>,
    /// Suspicion flags: parallel to `classes`, each a dense per-peer table
    /// indexed by raw process id — O(1) per (class, peer) on the tick and
    /// heartbeat paths.
    suspected: Vec<(MonitorClass, Vec<bool>)>,
    /// Number of currently set suspicion flags (all classes). While zero,
    /// ticks skip the per-(peer, class) timeout sweep until `next_scan`.
    suspect_count: usize,
    /// Earliest time any (peer, class) pair could newly time out, as of the
    /// last sweep. `None` = unknown, sweep on the next tick. Heartbeats only
    /// push deadlines later, so a stale value is merely conservative (an
    /// early sweep that finds nothing), never late.
    next_scan: Option<Time>,
    /// Gossip tick counter driving ring-segment rotation.
    round: u64,
    /// Ring offset of the segment probed on the most recent tick — the
    /// digest window [`Self::digest`] reports.
    last_base: usize,
    started_at: Time,
}

impl HeartbeatFd {
    /// Creates an all-pairs detector for process `me` that emits heartbeats
    /// every `interval`.
    pub fn new(me: ProcessId, interval: TimeDelta) -> Self {
        Self::with_mode(me, interval, FdMode::AllPairs)
    }

    /// Creates a detector with an explicit monitoring [`FdMode`].
    pub fn with_mode(me: ProcessId, interval: TimeDelta, mode: FdMode) -> Self {
        HeartbeatFd {
            me,
            interval,
            mode,
            peers: Vec::new(),
            classes: Vec::new(),
            last_heard: Vec::new(),
            suspected: Vec::new(),
            suspect_count: 0,
            next_scan: None,
            round: 0,
            last_base: 0,
            started_at: Time::ZERO,
        }
    }

    /// The heartbeat emission interval (owner's tick period).
    pub fn interval(&self) -> TimeDelta {
        self.interval
    }

    /// The monitoring mode this detector runs in.
    pub fn mode(&self) -> FdMode {
        self.mode
    }

    /// The extra last-heard staleness budget gossip rotation introduces:
    /// one full rotation cycle (every correct peer heartbeats us once per
    /// cycle). Zero in all-pairs mode, where every interval probes everyone.
    fn rotation_slack(&self) -> TimeDelta {
        match self.mode {
            FdMode::AllPairs => TimeDelta::ZERO,
            FdMode::Gossip { .. } => self
                .interval
                .saturating_mul(self.mode.cycle_ticks(self.peers.len())),
        }
    }

    /// The effective timeout of `class` under the current mode and group
    /// size: the registered timeout plus the rotation slack.
    fn effective_timeout(&self, state: ClassState) -> TimeDelta {
        state.timeout + self.rotation_slack()
    }

    /// Upper bound on crash-to-suspicion latency for `class`, assuming
    /// stable membership since the crash: the effective timeout plus one
    /// interval of tick granularity. Network delay between the crashed
    /// peer's last heartbeat and its receipt is not included — callers add
    /// their topology's delay bound.
    pub fn suspicion_bound(&self, class: MonitorClass) -> Option<TimeDelta> {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|&(_, state)| self.effective_timeout(state) + self.interval)
    }

    /// Registers (or re-times) a suspicion class. (`start_monitor` in Fig 9.)
    pub fn register_class(&mut self, class: MonitorClass, timeout: TimeDelta) {
        if let Some(slot) = self.classes.iter_mut().find(|(c, _)| *c == class) {
            slot.1 = ClassState { timeout };
        } else {
            self.classes.push((class, ClassState { timeout }));
            self.classes.sort_unstable_by_key(|&(c, _)| c);
            self.suspected.push((class, Vec::new()));
            self.suspected.sort_unstable_by_key(|&(c, _)| c);
        }
        self.next_scan = None;
    }

    /// Removes a suspicion class. (`stop_monitor` in Fig 9.)
    pub fn unregister_class(&mut self, class: MonitorClass) {
        self.classes.retain(|&(c, _)| c != class);
        self.suspected.retain(|(c, _)| *c != class);
        self.recount_suspected();
        self.next_scan = None;
    }

    /// Recomputes `suspect_count` from the flag tables (rare paths only).
    fn recount_suspected(&mut self) {
        self.suspect_count = self
            .suspected
            .iter()
            .map(|(_, t)| t.iter().filter(|&&f| f).count())
            .sum();
    }

    fn suspicion_flag(&mut self, class_idx: usize, peer: ProcessId) -> &mut bool {
        let table = &mut self.suspected[class_idx].1;
        let idx = peer.index();
        if idx >= table.len() {
            table.resize(idx + 1, false);
        }
        &mut table[idx]
    }

    fn last_heard_of(&self, p: ProcessId) -> Time {
        self.last_heard
            .get(p.index())
            .copied()
            .flatten()
            .unwrap_or(self.started_at)
    }

    fn note_heard(&mut self, p: ProcessId, now: Time) {
        let idx = p.index();
        if idx >= self.last_heard.len() {
            self.last_heard.resize(idx + 1, None);
        }
        self.last_heard[idx] = Some(now);
    }

    /// Replaces the set of monitored peers (driven by `new_view`).
    ///
    /// `self` is filtered out; state about dropped peers is discarded.
    pub fn set_peers(&mut self, peers: impl IntoIterator<Item = ProcessId>, now: Time) {
        let me = self.me;
        self.peers = peers.into_iter().filter(|p| *p != me).collect();
        self.peers.sort_unstable();
        self.peers.dedup();
        // `peers` is sorted and deduplicated above, so membership checks
        // during cleanup are binary searches.
        for (i, slot) in self.last_heard.iter_mut().enumerate() {
            if self.peers.binary_search(&ProcessId::new(i as u32)).is_err() {
                *slot = None;
            }
        }
        for (_, table) in &mut self.suspected {
            for (i, flag) in table.iter_mut().enumerate() {
                if self.peers.binary_search(&ProcessId::new(i as u32)).is_err() {
                    *flag = false;
                }
            }
        }
        // Newly monitored (never-heard) peers get a grace period of one full
        // timeout from now rather than being instantly suspected.
        let peers = std::mem::take(&mut self.peers);
        for &p in &peers {
            if self.last_heard.get(p.index()).copied().flatten().is_none() {
                self.note_heard(p, now);
            }
        }
        self.peers = peers;
        self.started_at = self.started_at.max(now);
        self.recount_suspected();
        self.next_scan = None;
    }

    /// The currently monitored peers.
    pub fn peers(&self) -> &[ProcessId] {
        &self.peers
    }

    /// Records a heartbeat from `from`; returns `Restore` transitions for
    /// every class that had suspected `from`.
    pub fn on_heartbeat(&mut self, from: ProcessId, now: Time) -> Vec<FdOut> {
        let mut out = Vec::new();
        self.on_heartbeat_into(from, now, &mut out);
        out
    }

    /// [`on_heartbeat`](Self::on_heartbeat), appending into a caller-owned
    /// buffer (the hot-path entry point: heartbeats arrive every interval
    /// from every peer).
    pub fn on_heartbeat_into(&mut self, from: ProcessId, now: Time, out: &mut Vec<FdOut>) {
        // `peers` is kept sorted by `set_peers`: membership is a binary
        // search, not a linear scan — this runs once per received heartbeat.
        if self.peers.binary_search(&from).is_err() {
            return;
        }
        self.note_heard(from, now);
        // `suspected` is kept sorted by class, so restore transitions stay
        // deterministic.
        for (class, table) in &mut self.suspected {
            if let Some(flag) = table.get_mut(from.index()) {
                if *flag {
                    *flag = false;
                    self.suspect_count -= 1;
                    out.push(FdOut::Restore {
                        class: *class,
                        peer: from,
                    });
                }
            }
        }
    }

    /// The alive digest to piggyback on this tick's gossip heartbeats: the
    /// last-heard times of the ring segment currently being probed (the
    /// rotation covers every peer once per cycle). Entries are `(peer,
    /// last-heard)`; receivers merge them with [`Self::on_gossip`].
    pub fn digest(&self) -> Vec<(ProcessId, Time)> {
        let m = self.peers.len();
        if m == 0 {
            return Vec::new();
        }
        let k = self.mode.fanout_for(m).min(m);
        (0..k)
            .map(|j| {
                let p = self.peers[(self.last_base + j) % m];
                (p, self.last_heard_of(p))
            })
            .collect()
    }

    /// Records a gossip heartbeat from `from` carrying an alive `digest`:
    /// `from` itself is marked heard now, and each digest entry can only
    /// *advance* a peer's last-heard time (a crashed peer's entries never
    /// postdate its crash, so digests cannot mask a real failure). Restores
    /// fire for any class whose suspicion the merged times clear.
    pub fn on_gossip(
        &mut self,
        from: ProcessId,
        digest: &[(ProcessId, Time)],
        now: Time,
    ) -> Vec<FdOut> {
        let mut out = Vec::new();
        self.on_gossip_into(from, digest, now, &mut out);
        out
    }

    /// [`on_gossip`](Self::on_gossip), appending into a caller-owned buffer.
    pub fn on_gossip_into(
        &mut self,
        from: ProcessId,
        digest: &[(ProcessId, Time)],
        now: Time,
        out: &mut Vec<FdOut>,
    ) {
        self.on_heartbeat_into(from, now, out);
        for &(p, t) in digest {
            if p == self.me || self.peers.binary_search(&p).is_err() {
                continue;
            }
            if t <= self.last_heard_of(p) {
                continue;
            }
            self.note_heard(p, t);
            if self.suspect_count == 0 {
                continue;
            }
            for i in 0..self.classes.len() {
                let (class, state) = self.classes[i];
                if now.since(t) > self.effective_timeout(state) {
                    continue; // still stale enough to stay suspected
                }
                let flag = self.suspicion_flag(i, p);
                if *flag {
                    *flag = false;
                    self.suspect_count -= 1;
                    out.push(FdOut::Restore { class, peer: p });
                }
            }
        }
    }

    /// Periodic driver: emits heartbeats and evaluates timeouts.
    pub fn on_tick(&mut self, now: Time) -> Vec<FdOut> {
        let mut out = Vec::new();
        self.on_tick_into(now, &mut out);
        out
    }

    /// [`on_tick`](Self::on_tick), appending into a caller-owned buffer.
    pub fn on_tick_into(&mut self, now: Time, out: &mut Vec<FdOut>) {
        let m = self.peers.len();
        match self.mode {
            FdMode::AllPairs => {
                out.extend(self.peers.iter().map(|&to| FdOut::SendHeartbeat { to }));
            }
            FdMode::Gossip { .. } if m > 0 => {
                // Probe the next ring segment: k consecutive peers at an
                // offset advancing by k each tick, so every peer is probed
                // exactly once per ⌈m/k⌉-tick cycle.
                let k = self.mode.fanout_for(m).min(m);
                self.last_base = ((self.round * k as u64) % m as u64) as usize;
                self.round += 1;
                out.extend((0..k).map(|j| FdOut::SendHeartbeat {
                    to: self.peers[(self.last_base + j) % m],
                }));
            }
            FdMode::Gossip { .. } => {}
        }
        // The timeout sweep is O(peers · classes); while nothing is
        // suspected it only needs to run once a (peer, class) deadline can
        // actually have passed. Heartbeats move deadlines later, so the
        // recorded horizon is conservative: sweeping early finds nothing,
        // and every genuine crossing happens at or after its pair's horizon.
        if self.suspect_count == 0 {
            if let Some(at) = self.next_scan {
                if now < at {
                    return;
                }
            }
        }
        let mut horizon = Time::MAX;
        // Rotation slack depends on the peer count; compute it before the
        // borrow-splitting take below empties `self.peers`.
        let slack = self.rotation_slack();
        let peers = std::mem::take(&mut self.peers);
        for &peer in &peers {
            let last = self.last_heard_of(peer);
            for i in 0..self.classes.len() {
                let (class, state) = self.classes[i];
                let timeout = state.timeout + slack;
                let suspected_now = now.since(last) > timeout;
                let flag = self.suspicion_flag(i, peer);
                if suspected_now && !*flag {
                    *flag = true;
                    self.suspect_count += 1;
                    out.push(FdOut::Suspect { class, peer });
                } else if !suspected_now && *flag {
                    *flag = false;
                    self.suspect_count -= 1;
                    out.push(FdOut::Restore { class, peer });
                } else if !suspected_now {
                    horizon = horizon.min(last + timeout);
                }
            }
        }
        self.peers = peers;
        self.next_scan = Some(horizon);
    }

    /// Whether `peer` is currently suspected by `class`.
    pub fn is_suspected(&self, class: MonitorClass, peer: ProcessId) -> bool {
        self.suspected
            .iter()
            .find(|(c, _)| *c == class)
            .and_then(|(_, table)| table.get(peer.index()))
            .copied()
            .unwrap_or(false)
    }

    /// All peers currently suspected by `class`, sorted.
    pub fn suspected_by(&self, class: MonitorClass) -> Vec<ProcessId> {
        self.suspected
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, table)| {
                table
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s)
                    .map(|(i, _)| ProcessId::new(i as u32))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn fd() -> HeartbeatFd {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.register_class(MonitorClass::MONITORING, TimeDelta::from_millis(500));
        fd.set_peers([P1, P2], Time::ZERO);
        fd
    }

    #[test]
    fn emits_heartbeats_to_all_peers() {
        let mut fd = fd();
        let out = fd.on_tick(Time::ZERO);
        let hbs: Vec<ProcessId> = out
            .iter()
            .filter_map(|o| match o {
                FdOut::SendHeartbeat { to } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(hbs, vec![P1, P2]);
    }

    #[test]
    fn small_timeout_class_suspects_first() {
        let mut fd = fd();
        fd.on_heartbeat(P1, Time::ZERO);
        fd.on_heartbeat(P2, Time::ZERO);
        // At 100 ms only the consensus class has timed out.
        let out = fd.on_tick(Time::from_millis(100));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::MONITORING)
        ));
        // At 600 ms the monitoring class suspects too.
        let out = fd.on_tick(Time::from_millis(600));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::MONITORING,
            peer: P1
        }));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert_eq!(fd.suspected_by(MonitorClass::MONITORING), vec![P1, P2]);
    }

    #[test]
    fn heartbeat_restores_suspected_peer() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_heartbeat(P1, Time::from_millis(101));
        assert_eq!(
            out,
            vec![FdOut::Restore {
                class: MonitorClass::CONSENSUS,
                peer: P1
            }]
        );
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
    }

    #[test]
    fn suspicion_transitions_fire_once() {
        let mut fd = fd();
        let first = fd.on_tick(Time::from_millis(100));
        assert!(first.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
        let second = fd.on_tick(Time::from_millis(110));
        assert!(!second.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
    }

    #[test]
    fn set_peers_gives_grace_period() {
        let mut fd = fd();
        let now = Time::from_secs(10);
        fd.set_peers([P1], now);
        // P1 was already monitored; its last-heard of t=0 is retained, so it
        // is suspected — but a brand new peer gets the grace period.
        let p9 = ProcessId::new(9);
        fd.set_peers([P1, p9], now);
        let out = fd.on_tick(now + TimeDelta::from_millis(10));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert!(!out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: p9
        }));
    }

    #[test]
    fn removed_peer_state_is_dropped() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        fd.set_peers([P2], Time::from_millis(100));
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert!(fd.on_heartbeat(P1, Time::from_millis(101)).is_empty());
        assert_eq!(fd.peers(), &[P2]);
    }

    #[test]
    fn unregister_class_stops_its_suspicions() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        fd.unregister_class(MonitorClass::CONSENSUS);
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_tick(Time::from_millis(200));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::CONSENSUS)
        ));
    }

    #[test]
    fn self_is_never_monitored() {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.set_peers([ME, P1], Time::ZERO);
        assert_eq!(fd.peers(), &[P1]);
    }

    /// A gossip detector over `peers` peers with a consensus class.
    fn gossip_fd(peers: u32, fanout: usize) -> HeartbeatFd {
        let mut fd =
            HeartbeatFd::with_mode(ME, TimeDelta::from_millis(10), FdMode::Gossip { fanout });
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.set_peers((1..=peers).map(ProcessId::new), Time::ZERO);
        fd
    }

    #[test]
    fn auto_fanout_is_logarithmic() {
        assert_eq!(FdMode::Gossip { fanout: 0 }.fanout_for(15), 4);
        assert_eq!(FdMode::Gossip { fanout: 0 }.fanout_for(255), 8);
        assert_eq!(FdMode::Gossip { fanout: 0 }.fanout_for(1023), 10);
        // Tiny groups still probe at least two peers per tick.
        assert_eq!(FdMode::Gossip { fanout: 0 }.fanout_for(2), 2);
        assert_eq!(FdMode::AllPairs.fanout_for(9), 9);
    }

    #[test]
    fn gossip_probes_a_rotating_segment_covering_every_peer() {
        let mut fd = gossip_fd(9, 3);
        let mut probed = std::collections::BTreeSet::new();
        for tick in 0..3u64 {
            let out = fd.on_tick(Time::from_millis(10 * tick));
            let hbs: Vec<ProcessId> = out
                .iter()
                .filter_map(|o| match o {
                    FdOut::SendHeartbeat { to } => Some(*to),
                    _ => None,
                })
                .collect();
            assert_eq!(hbs.len(), 3, "fanout-sized segment each tick");
            probed.extend(hbs);
        }
        // One cycle (⌈9/3⌉ = 3 ticks) probes every peer exactly once.
        assert_eq!(probed.len(), 9);
        assert_eq!(FdMode::Gossip { fanout: 3 }.cycle_ticks(9), 3);
    }

    #[test]
    fn gossip_timeout_is_extended_by_the_rotation_cycle() {
        let mut fd = gossip_fd(9, 3);
        for p in 1..=9 {
            fd.on_heartbeat(ProcessId::new(p), Time::ZERO);
        }
        // The all-pairs deadline (50 ms) passes without suspicion: the
        // effective gossip timeout is 50 + 3·10 (cycle) = 80 ms.
        let out = fd.on_tick(Time::from_millis(70));
        assert!(
            !out.iter().any(|o| matches!(o, FdOut::Suspect { .. })),
            "{out:?}"
        );
        let out = fd.on_tick(Time::from_millis(90));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert_eq!(
            fd.suspicion_bound(MonitorClass::CONSENSUS),
            Some(TimeDelta::from_millis(50 + 30 + 10))
        );
    }

    #[test]
    fn digest_entries_restore_an_indirectly_heard_peer() {
        let mut fd = gossip_fd(9, 3);
        for p in 1..=9 {
            fd.on_heartbeat(ProcessId::new(p), Time::ZERO);
        }
        fd.on_tick(Time::from_millis(90));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        // P2's gossip vouches it heard P1 recently — the suspicion lifts
        // without a direct heartbeat from P1.
        let out = fd.on_gossip(P2, &[(P1, Time::from_millis(85))], Time::from_millis(91));
        assert!(out.contains(&FdOut::Restore {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
    }

    #[test]
    fn stale_digest_entries_cannot_mask_a_crash() {
        let mut fd = gossip_fd(9, 3);
        for p in 1..=9 {
            fd.on_heartbeat(ProcessId::new(p), Time::from_millis(100));
        }
        fd.on_tick(Time::from_millis(200));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        // A digest whose last-heard for P1 predates what we already know
        // is ignored: last-heard times only move forward, and a crashed
        // peer's entries never postdate its crash.
        let out = fd.on_gossip(P2, &[(P1, Time::from_millis(40))], Time::from_millis(201));
        assert!(!out
            .iter()
            .any(|o| matches!(o, FdOut::Restore { peer, .. } if *peer == P1)));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
    }

    #[test]
    fn digest_covers_the_probed_segment() {
        let mut fd = gossip_fd(9, 3);
        fd.on_tick(Time::ZERO);
        let digest = fd.digest();
        assert_eq!(digest.len(), 3, "digest mirrors the probed segment");
        for (p, _) in digest {
            assert!(fd.peers().contains(&p));
        }
    }
}
