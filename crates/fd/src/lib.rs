//! # gcs-fd — failure detection, decoupled from membership
//!
//! A heartbeat failure detector in the style assumed by the paper's new
//! architecture (Fig 9): it sits directly on the *unreliable* transport and
//! serves **multiple clients with independent timeouts** — the paper's
//! §3.3.2 example has the consensus component suspecting after seconds while
//! the monitoring component suspects after minutes, through the
//! `start_stop_monitor` interface. Here each client registers a
//! [`MonitorClass`] with its own timeout and receives its own
//! [`FdOut::Suspect`] / [`FdOut::Restore`] transitions.
//!
//! In the simulated system model (eventually bounded delays between correct
//! processes; crashed processes stop sending), this heartbeat detector
//! implements ◇S for each class: crashed peers are permanently suspected
//! once their last heartbeat ages past the class timeout (strong
//! completeness), and wrong suspicions of correct peers are *transient* —
//! the next heartbeat restores them (eventual weak accuracy after delays
//! stabilize).
//!
//! The detector is sans-I/O, like every protocol in this repository: the
//! owner drives [`HeartbeatFd::on_tick`] and feeds received heartbeats in,
//! and carries out the returned [`FdOut`] instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_kernel::{ProcessId, Time, TimeDelta};

/// Identifies one registered suspicion client (timeout class).
///
/// The paper's architecture uses at least two: a small-timeout class for
/// consensus and a large-timeout class for monitoring/exclusion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MonitorClass(pub u16);

impl MonitorClass {
    /// Conventional class for the consensus component (small timeout).
    pub const CONSENSUS: MonitorClass = MonitorClass(0);
    /// Conventional class for the monitoring component (large timeout).
    pub const MONITORING: MonitorClass = MonitorClass(1);
}

/// An instruction produced by the failure detector for its owner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdOut {
    /// Send a heartbeat to `to` over the unreliable transport.
    SendHeartbeat {
        /// Destination peer.
        to: ProcessId,
    },
    /// `peer` is now suspected by class `class`.
    Suspect {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The suspected peer.
        peer: ProcessId,
    },
    /// `peer` is no longer suspected by class `class` (a heartbeat arrived).
    Restore {
        /// The timeout class making the transition.
        class: MonitorClass,
        /// The restored peer.
        peer: ProcessId,
    },
}

#[derive(Clone, Copy, Debug)]
struct ClassState {
    timeout: TimeDelta,
}

/// A heartbeat failure detector with per-class timeouts.
///
/// Internal tables are small and dense (a handful of classes, a group's
/// worth of peers), so they are flat sorted vectors rather than hash maps —
/// `on_heartbeat` runs on every received heartbeat and allocates nothing.
#[derive(Debug)]
pub struct HeartbeatFd {
    me: ProcessId,
    interval: TimeDelta,
    peers: Vec<ProcessId>,
    /// Registered classes, sorted by class id.
    classes: Vec<(MonitorClass, ClassState)>,
    /// Last heartbeat per peer, indexed by raw process id.
    last_heard: Vec<Option<Time>>,
    /// Suspicion flags: parallel to `classes`, each a dense per-peer table
    /// indexed by raw process id — O(1) per (class, peer) on the tick and
    /// heartbeat paths.
    suspected: Vec<(MonitorClass, Vec<bool>)>,
    started_at: Time,
}

impl HeartbeatFd {
    /// Creates a detector for process `me` that emits heartbeats every
    /// `interval`.
    pub fn new(me: ProcessId, interval: TimeDelta) -> Self {
        HeartbeatFd {
            me,
            interval,
            peers: Vec::new(),
            classes: Vec::new(),
            last_heard: Vec::new(),
            suspected: Vec::new(),
            started_at: Time::ZERO,
        }
    }

    /// The heartbeat emission interval (owner's tick period).
    pub fn interval(&self) -> TimeDelta {
        self.interval
    }

    /// Registers (or re-times) a suspicion class. (`start_monitor` in Fig 9.)
    pub fn register_class(&mut self, class: MonitorClass, timeout: TimeDelta) {
        if let Some(slot) = self.classes.iter_mut().find(|(c, _)| *c == class) {
            slot.1 = ClassState { timeout };
        } else {
            self.classes.push((class, ClassState { timeout }));
            self.classes.sort_unstable_by_key(|&(c, _)| c);
            self.suspected.push((class, Vec::new()));
            self.suspected.sort_unstable_by_key(|&(c, _)| c);
        }
    }

    /// Removes a suspicion class. (`stop_monitor` in Fig 9.)
    pub fn unregister_class(&mut self, class: MonitorClass) {
        self.classes.retain(|&(c, _)| c != class);
        self.suspected.retain(|(c, _)| *c != class);
    }

    fn suspicion_flag(&mut self, class_idx: usize, peer: ProcessId) -> &mut bool {
        let table = &mut self.suspected[class_idx].1;
        let idx = peer.index();
        if idx >= table.len() {
            table.resize(idx + 1, false);
        }
        &mut table[idx]
    }

    fn last_heard_of(&self, p: ProcessId) -> Time {
        self.last_heard
            .get(p.index())
            .copied()
            .flatten()
            .unwrap_or(self.started_at)
    }

    fn note_heard(&mut self, p: ProcessId, now: Time) {
        let idx = p.index();
        if idx >= self.last_heard.len() {
            self.last_heard.resize(idx + 1, None);
        }
        self.last_heard[idx] = Some(now);
    }

    /// Replaces the set of monitored peers (driven by `new_view`).
    ///
    /// `self` is filtered out; state about dropped peers is discarded.
    pub fn set_peers(&mut self, peers: impl IntoIterator<Item = ProcessId>, now: Time) {
        let me = self.me;
        self.peers = peers.into_iter().filter(|p| *p != me).collect();
        self.peers.sort_unstable();
        self.peers.dedup();
        // `peers` is sorted and deduplicated above, so membership checks
        // during cleanup are binary searches.
        for (i, slot) in self.last_heard.iter_mut().enumerate() {
            if self.peers.binary_search(&ProcessId::new(i as u32)).is_err() {
                *slot = None;
            }
        }
        for (_, table) in &mut self.suspected {
            for (i, flag) in table.iter_mut().enumerate() {
                if self.peers.binary_search(&ProcessId::new(i as u32)).is_err() {
                    *flag = false;
                }
            }
        }
        // Newly monitored (never-heard) peers get a grace period of one full
        // timeout from now rather than being instantly suspected.
        let peers = std::mem::take(&mut self.peers);
        for &p in &peers {
            if self.last_heard.get(p.index()).copied().flatten().is_none() {
                self.note_heard(p, now);
            }
        }
        self.peers = peers;
        self.started_at = self.started_at.max(now);
    }

    /// The currently monitored peers.
    pub fn peers(&self) -> &[ProcessId] {
        &self.peers
    }

    /// Records a heartbeat from `from`; returns `Restore` transitions for
    /// every class that had suspected `from`.
    pub fn on_heartbeat(&mut self, from: ProcessId, now: Time) -> Vec<FdOut> {
        let mut out = Vec::new();
        self.on_heartbeat_into(from, now, &mut out);
        out
    }

    /// [`on_heartbeat`](Self::on_heartbeat), appending into a caller-owned
    /// buffer (the hot-path entry point: heartbeats arrive every interval
    /// from every peer).
    pub fn on_heartbeat_into(&mut self, from: ProcessId, now: Time, out: &mut Vec<FdOut>) {
        if !self.peers.contains(&from) {
            return;
        }
        self.note_heard(from, now);
        // `suspected` is kept sorted by class, so restore transitions stay
        // deterministic.
        for (class, table) in &mut self.suspected {
            if let Some(flag) = table.get_mut(from.index()) {
                if *flag {
                    *flag = false;
                    out.push(FdOut::Restore {
                        class: *class,
                        peer: from,
                    });
                }
            }
        }
    }

    /// Periodic driver: emits heartbeats and evaluates timeouts.
    pub fn on_tick(&mut self, now: Time) -> Vec<FdOut> {
        let mut out = Vec::new();
        self.on_tick_into(now, &mut out);
        out
    }

    /// [`on_tick`](Self::on_tick), appending into a caller-owned buffer.
    pub fn on_tick_into(&mut self, now: Time, out: &mut Vec<FdOut>) {
        out.extend(self.peers.iter().map(|&to| FdOut::SendHeartbeat { to }));
        let peers = std::mem::take(&mut self.peers);
        for &peer in &peers {
            let last = self.last_heard_of(peer);
            for i in 0..self.classes.len() {
                let (class, state) = self.classes[i];
                let suspected_now = now.since(last) > state.timeout;
                let flag = self.suspicion_flag(i, peer);
                if suspected_now && !*flag {
                    *flag = true;
                    out.push(FdOut::Suspect { class, peer });
                } else if !suspected_now && *flag {
                    *flag = false;
                    out.push(FdOut::Restore { class, peer });
                }
            }
        }
        self.peers = peers;
    }

    /// Whether `peer` is currently suspected by `class`.
    pub fn is_suspected(&self, class: MonitorClass, peer: ProcessId) -> bool {
        self.suspected
            .iter()
            .find(|(c, _)| *c == class)
            .and_then(|(_, table)| table.get(peer.index()))
            .copied()
            .unwrap_or(false)
    }

    /// All peers currently suspected by `class`, sorted.
    pub fn suspected_by(&self, class: MonitorClass) -> Vec<ProcessId> {
        self.suspected
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, table)| {
                table
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s)
                    .map(|(i, _)| ProcessId::new(i as u32))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn fd() -> HeartbeatFd {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.register_class(MonitorClass::MONITORING, TimeDelta::from_millis(500));
        fd.set_peers([P1, P2], Time::ZERO);
        fd
    }

    #[test]
    fn emits_heartbeats_to_all_peers() {
        let mut fd = fd();
        let out = fd.on_tick(Time::ZERO);
        let hbs: Vec<ProcessId> = out
            .iter()
            .filter_map(|o| match o {
                FdOut::SendHeartbeat { to } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(hbs, vec![P1, P2]);
    }

    #[test]
    fn small_timeout_class_suspects_first() {
        let mut fd = fd();
        fd.on_heartbeat(P1, Time::ZERO);
        fd.on_heartbeat(P2, Time::ZERO);
        // At 100 ms only the consensus class has timed out.
        let out = fd.on_tick(Time::from_millis(100));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::MONITORING)
        ));
        // At 600 ms the monitoring class suspects too.
        let out = fd.on_tick(Time::from_millis(600));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::MONITORING,
            peer: P1
        }));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert_eq!(fd.suspected_by(MonitorClass::MONITORING), vec![P1, P2]);
    }

    #[test]
    fn heartbeat_restores_suspected_peer() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_heartbeat(P1, Time::from_millis(101));
        assert_eq!(
            out,
            vec![FdOut::Restore {
                class: MonitorClass::CONSENSUS,
                peer: P1
            }]
        );
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
    }

    #[test]
    fn suspicion_transitions_fire_once() {
        let mut fd = fd();
        let first = fd.on_tick(Time::from_millis(100));
        assert!(first.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
        let second = fd.on_tick(Time::from_millis(110));
        assert!(!second.iter().any(|o| matches!(o, FdOut::Suspect { .. })));
    }

    #[test]
    fn set_peers_gives_grace_period() {
        let mut fd = fd();
        let now = Time::from_secs(10);
        fd.set_peers([P1], now);
        // P1 was already monitored; its last-heard of t=0 is retained, so it
        // is suspected — but a brand new peer gets the grace period.
        let p9 = ProcessId::new(9);
        fd.set_peers([P1, p9], now);
        let out = fd.on_tick(now + TimeDelta::from_millis(10));
        assert!(out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: P1
        }));
        assert!(!out.contains(&FdOut::Suspect {
            class: MonitorClass::CONSENSUS,
            peer: p9
        }));
    }

    #[test]
    fn removed_peer_state_is_dropped() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        assert!(fd.is_suspected(MonitorClass::CONSENSUS, P1));
        fd.set_peers([P2], Time::from_millis(100));
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        assert!(fd.on_heartbeat(P1, Time::from_millis(101)).is_empty());
        assert_eq!(fd.peers(), &[P2]);
    }

    #[test]
    fn unregister_class_stops_its_suspicions() {
        let mut fd = fd();
        fd.on_tick(Time::from_millis(100));
        fd.unregister_class(MonitorClass::CONSENSUS);
        assert!(!fd.is_suspected(MonitorClass::CONSENSUS, P1));
        let out = fd.on_tick(Time::from_millis(200));
        assert!(!out.iter().any(
            |o| matches!(o, FdOut::Suspect { class, .. } if *class == MonitorClass::CONSENSUS)
        ));
    }

    #[test]
    fn self_is_never_monitored() {
        let mut fd = HeartbeatFd::new(ME, TimeDelta::from_millis(10));
        fd.register_class(MonitorClass::CONSENSUS, TimeDelta::from_millis(50));
        fd.set_peers([ME, P1], Time::ZERO);
        assert_eq!(fd.peers(), &[P1]);
    }
}
