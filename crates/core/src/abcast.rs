//! Atomic broadcast as a sequence of consensus instances (Chandra-Toueg
//! reduction) — the basic component of the new architecture (§3.1.1).
//!
//! To a-broadcast, a process disseminates its message by reliable broadcast
//! and keeps proposing its set of *unordered* messages to consensus instance
//! `k = 0, 1, 2, …`; the decision of instance `k` is the `k`-th delivered
//! batch, flushed in deterministic [`MsgId`] order. Unlike the traditional
//! architectures of §2, this algorithm never blocks on failures as long as
//! `f < n/2` of the current view's members are correct and the underlying
//! failure detector is ◇S — **no membership change is needed to make
//! progress past a crash** (the paper's first key feature).
//!
//! Batches carry full messages, so a decided message is always deliverable
//! even if its sender crashed before its diffusion completed.
//!
//! Dynamic membership: a view change is itself an ordered (control) message;
//! instance `k` is always run among the members of the view obtained after
//! flushing batches `0..k`, which is agreed state — so all processes use the
//! same participant set for every instance (the Dynamic Group Communication
//! construction the paper cites as its ref. 32).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gcs_consensus::InstanceId;
use gcs_kernel::{FxHashSet, ProcessId, TimeDelta};

use crate::rbcast::{Rbcast, RelayFanout};
use crate::types::{
    AbMsg, Batch, Body, Delivery, DeliveryKind, Message, MessageClass, MsgId, SnapshotData, View,
    WireMsg,
};

/// When a proposal batch closes: on a message-count cap, a byte cap, or a
/// deadline — whichever trips first (§batching under overload).
///
/// The default (`max_msgs`/`max_bytes` unbounded, `max_delay` zero) proposes
/// eagerly with everything pending, which is exactly the pre-batching
/// behavior: recorded scenario fingerprints are bit-identical under it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum messages per proposed batch.
    pub max_msgs: usize,
    /// Maximum payload bytes per proposed batch (a batch always carries at
    /// least one message, however large).
    pub max_bytes: usize,
    /// How long to hold a non-full batch open for more traffic before
    /// proposing anyway. Zero disables holding: propose immediately.
    pub max_delay: TimeDelta,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_msgs: usize::MAX,
            max_bytes: usize::MAX,
            max_delay: TimeDelta::ZERO,
        }
    }
}

/// An instruction produced by the atomic-broadcast core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbOut {
    /// Send a wire message to a peer over the reliable channel.
    Wire(ProcessId, WireMsg),
    /// Ask the consensus component to run `instance` with this proposal
    /// among these participants (`propose`/`run` in Fig 9).
    Propose {
        /// The consensus instance to run.
        instance: InstanceId,
        /// The proposed batch (may be empty when joining an instance started
        /// by another process).
        batch: Batch,
        /// The members of the view current at this instance (shared: the
        /// same set is proposed for every instance of a view, so it is
        /// cached per view change instead of cloned per proposal).
        participants: Arc<[ProcessId]>,
    },
    /// Deliver an ordered application message (`adeliver`).
    App(Delivery),
    /// Hand an ordered control message (view change, generic-broadcast epoch
    /// closure) to its owning component.
    Ctrl(Message),
    /// Arm a one-shot timer for [`BatchPolicy::max_delay`]: a non-full batch
    /// is being held open and must be force-proposed when the timer fires
    /// (the adapter calls [`AbcastCore::on_batch_deadline_into`]). Never
    /// emitted under the default eager policy.
    ArmBatchTimer(TimeDelta),
}

/// The atomic-broadcast core (sans-I/O).
#[derive(Debug)]
pub struct AbcastCore {
    me: ProcessId,
    view: View,
    /// The current view's member list as a shared slice, refreshed on view
    /// changes and handed out per proposal as a reference-count bump.
    participants: Arc<[ProcessId]>,
    active: bool,
    rb: Rbcast,
    /// R-delivered messages not yet a-delivered (the proposal pool).
    pending: BTreeMap<MsgId, Message>,
    /// Ids in decided batches (never re-proposed).
    committed: FxHashSet<MsgId>,
    /// Ids already a-delivered (never re-delivered).
    adelivered: FxHashSet<MsgId>,
    /// Decided, not yet flushed batches.
    batches: BTreeMap<InstanceId, Batch>,
    /// Next batch/instance to flush — and the base of the proposal window.
    cursor: InstanceId,
    /// Instances reported to exist by the consensus component.
    requested: BTreeSet<InstanceId>,
    /// Instances with an outstanding (undecided) proposal of ours.
    proposed: BTreeSet<InstanceId>,
    /// Ids currently riding in an outstanding proposal — excluded from later
    /// window instances so concurrent proposals stay disjoint locally.
    assigned: FxHashSet<MsgId>,
    /// The ids each outstanding proposal carries, released when its instance
    /// decides (losing proposals return their leftovers to the pool).
    by_instance: BTreeMap<InstanceId, Vec<MsgId>>,
    /// How many consensus instances may be in flight at once. Depth 1 is the
    /// paper's one-instance-at-a-time cursor, bit-identical to the
    /// pre-pipelining core.
    depth: usize,
    /// When a proposal batch closes (count, bytes, or deadline).
    policy: BatchPolicy,
    /// Whether a batch-deadline timer is currently armed.
    hold_armed: bool,
    /// Reusable proposal-assembly buffer (clone-free gather: `Message`
    /// clones are shallow arena handles, and the batch allocation is the
    /// only per-proposal allocation).
    scratch: Vec<Message>,
}

impl AbcastCore {
    /// Creates the core. `initial_view` is `Some` for founding members and
    /// `None` for processes that will join later (inactive until
    /// [`install_snapshot`](Self::install_snapshot)).
    pub fn new(me: ProcessId, initial_view: Option<View>) -> Self {
        Self::with_relay(me, initial_view, RelayFanout::All)
    }

    /// Creates the core with an explicit reliable-broadcast relay policy.
    /// Bounded relay turns diffusion's O(n²) per-broadcast message cost into
    /// O(n·k) at large n (see [`RelayFanout`]).
    pub fn with_relay(me: ProcessId, initial_view: Option<View>, relay: RelayFanout) -> Self {
        Self::with_policy(me, initial_view, relay, 1, BatchPolicy::default())
    }

    /// Creates the core with a consensus pipeline depth and batch policy on
    /// top of the relay policy. Depth 1 with the default policy is the
    /// classic sequential core.
    pub fn with_policy(
        me: ProcessId,
        initial_view: Option<View>,
        relay: RelayFanout,
        depth: usize,
        policy: BatchPolicy,
    ) -> Self {
        let mut rb = Rbcast::with_relay(me, relay);
        let (view, active) = match initial_view {
            Some(v) => {
                rb.set_peers(&v.members);
                (v, true)
            }
            None => (
                View {
                    id: 0,
                    members: Vec::new(),
                },
                false,
            ),
        };
        AbcastCore {
            me,
            participants: view.members.as_slice().into(),
            view,
            active,
            rb,
            pending: BTreeMap::new(),
            committed: FxHashSet::default(),
            adelivered: FxHashSet::default(),
            batches: BTreeMap::new(),
            cursor: 0,
            requested: BTreeSet::new(),
            proposed: BTreeSet::new(),
            assigned: FxHashSet::default(),
            by_instance: BTreeMap::new(),
            depth: depth.max(1),
            policy,
            hold_armed: false,
            scratch: Vec::new(),
        }
    }

    /// The configured pipeline depth (always ≥ 1).
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// The configured batch policy.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The view this core currently operates in.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether this process participates (is a member).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The next instance to be flushed (== number of delivered batches).
    pub fn cursor(&self) -> InstanceId {
        self.cursor
    }

    /// Ids already a-delivered (for snapshots).
    pub fn adelivered(&self) -> Vec<MsgId> {
        let mut v: Vec<MsgId> = self.adelivered.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Atomically broadcasts a message built from `class` and `body`,
    /// appending the resulting instructions to `out` (the hot-path entry
    /// point: callers reuse one buffer across invocations).
    pub fn abcast_into(&mut self, class: MessageClass, body: Body, out: &mut Vec<AbOut>) {
        let id = self.rb.next_id();
        let message = Message { id, class, body };
        // Message clones are shallow (payloads are arena handles), so the
        // per-peer diffusion fan-out is cheap.
        for &to in self.rb.broadcast(&message) {
            out.push(AbOut::Wire(to, WireMsg::Ab(AbMsg::Data(message.clone()))));
        }
        if !self.adelivered.contains(&id) {
            self.pending.insert(id, message);
        }
        self.maybe_propose(out);
    }

    /// [`abcast_into`](Self::abcast_into) returning a fresh buffer.
    pub fn abcast(&mut self, class: MessageClass, body: Body) -> Vec<AbOut> {
        let mut out = Vec::new();
        self.abcast_into(class, body, &mut out);
        out
    }

    /// Handles a diffused message from the network.
    pub fn on_data_into(&mut self, from: ProcessId, message: Message, out: &mut Vec<AbOut>) {
        let receipt = self.rb.on_data(from, message);
        if let Some(message) = receipt.deliver {
            for to in receipt.relay_to {
                out.push(AbOut::Wire(to, WireMsg::Ab(AbMsg::Data(message.clone()))));
            }
            if !self.adelivered.contains(&message.id) && !self.committed.contains(&message.id) {
                self.pending.insert(message.id, message);
            }
            self.maybe_propose(out);
        }
    }

    /// [`on_data_into`](Self::on_data_into) returning a fresh buffer.
    pub fn on_data(&mut self, from: ProcessId, message: Message) -> Vec<AbOut> {
        let mut out = Vec::new();
        self.on_data_into(from, message, &mut out);
        out
    }

    /// Handles a consensus decision.
    pub fn on_decide_into(&mut self, instance: InstanceId, batch: Batch, out: &mut Vec<AbOut>) {
        if instance < self.cursor || self.batches.contains_key(&instance) {
            return; // duplicate decision report
        }
        // Our proposal for this instance (if any) is settled: whatever the
        // decision did not commit returns to the pool for a later window
        // instance.
        self.proposed.remove(&instance);
        if let Some(ids) = self.by_instance.remove(&instance) {
            for id in ids {
                self.assigned.remove(&id);
            }
        }
        for m in batch.iter() {
            self.committed.insert(m.id);
            self.pending.remove(&m.id);
        }
        self.batches.insert(instance, batch);
        self.flush(out);
        self.maybe_propose(out);
    }

    /// [`on_decide_into`](Self::on_decide_into) returning a fresh buffer.
    pub fn on_decide(&mut self, instance: InstanceId, batch: Batch) -> Vec<AbOut> {
        let mut out = Vec::new();
        self.on_decide_into(instance, batch, &mut out);
        out
    }

    /// The consensus component saw traffic for `instance` but has no local
    /// instance yet: participate (with an empty proposal if need be) once
    /// the cursor reaches it.
    pub fn need_instance_into(&mut self, instance: InstanceId, out: &mut Vec<AbOut>) {
        if instance >= self.cursor {
            self.requested.insert(instance);
            self.maybe_propose(out);
        }
    }

    /// [`need_instance_into`](Self::need_instance_into) returning a fresh
    /// buffer.
    pub fn need_instance(&mut self, instance: InstanceId) -> Vec<AbOut> {
        let mut out = Vec::new();
        self.need_instance_into(instance, &mut out);
        out
    }

    /// Installs a new view (called by the membership component when a view
    /// change is a-delivered). Applies to subsequent instances.
    pub fn set_view(&mut self, view: View) {
        self.rb.set_peers(&view.members);
        if !view.contains(self.me) {
            self.active = false;
        }
        self.participants = view.members.as_slice().into();
        self.view = view;
    }

    /// Activates a joining process from a state-transfer snapshot.
    pub fn install_snapshot_into(&mut self, snap: &SnapshotData, out: &mut Vec<AbOut>) {
        self.view = snap.view.clone();
        self.participants = snap.view.members.as_slice().into();
        self.rb.set_peers(&snap.view.members);
        self.active = true;
        self.cursor = snap.next_instance;
        self.adelivered = snap.adelivered.iter().copied().collect();
        self.pending.retain(|id, _| !snap.adelivered.contains(id));
        // A joiner has no outstanding proposals; start the window clean.
        self.proposed.clear();
        self.assigned.clear();
        self.by_instance.clear();
        self.maybe_propose(out);
    }

    /// [`install_snapshot_into`](Self::install_snapshot_into) returning a
    /// fresh buffer.
    pub fn install_snapshot(&mut self, snap: &SnapshotData) -> Vec<AbOut> {
        let mut out = Vec::new();
        self.install_snapshot_into(snap, &mut out);
        out
    }

    /// The batch-deadline timer fired: propose whatever is being held, even
    /// if the batch is not full.
    pub fn on_batch_deadline_into(&mut self, out: &mut Vec<AbOut>) {
        self.hold_armed = false;
        self.propose_window(out, true);
    }

    /// Proposes for every open instance in the pipeline window
    /// `[cursor, cursor + depth)` that has something to order (or that
    /// another process already started). Each instance takes the next
    /// policy-bounded chunk of unassigned pending messages, so concurrent
    /// proposals are locally disjoint; delivery still flushes strictly in
    /// instance order.
    fn maybe_propose(&mut self, out: &mut Vec<AbOut>) {
        self.propose_window(out, false);
    }

    fn propose_window(&mut self, out: &mut Vec<AbOut>, force: bool) {
        if !self.active {
            return;
        }
        let window_end = self.cursor + self.depth as InstanceId;
        for k in self.cursor..window_end {
            if self.batches.contains_key(&k) || self.proposed.contains(&k) {
                continue;
            }
            // Gather the next chunk of unassigned pending messages, in id
            // order, up to the policy caps. `scratch` is reused across
            // proposals and `Message` clones are shallow arena handles:
            // the decided-batch allocation below is the only per-proposal
            // allocation.
            self.scratch.clear();
            let mut bytes = 0usize;
            let mut full = false;
            for (id, m) in self.pending.iter() {
                if self.assigned.contains(id) {
                    continue;
                }
                if self.scratch.len() >= self.policy.max_msgs {
                    full = true;
                    break;
                }
                let sz = m.body.size_hint();
                if !self.scratch.is_empty() && bytes.saturating_add(sz) > self.policy.max_bytes {
                    full = true;
                    break;
                }
                bytes = bytes.saturating_add(sz);
                self.scratch.push(m.clone());
            }
            // A batch right at a cap is full even when nothing was left
            // behind — the deadline hold is only for batches with headroom.
            full = full
                || self.scratch.len() >= self.policy.max_msgs
                || bytes >= self.policy.max_bytes;
            let requested = self.requested.contains(&k);
            if self.scratch.is_empty() && !requested {
                continue;
            }
            // Deadline batching: hold a non-full batch open for more
            // traffic unless the deadline fired or a peer already started
            // the instance (participating late would stall them).
            if !force
                && !full
                && !requested
                && self.policy.max_delay > TimeDelta::ZERO
                && !self.scratch.is_empty()
            {
                if !self.hold_armed {
                    self.hold_armed = true;
                    out.push(AbOut::ArmBatchTimer(self.policy.max_delay));
                }
                return;
            }
            if !self.scratch.is_empty() {
                self.by_instance
                    .insert(k, self.scratch.iter().map(|m| m.id).collect());
                self.assigned.extend(self.scratch.iter().map(|m| m.id));
            }
            self.proposed.insert(k);
            out.push(AbOut::Propose {
                instance: k,
                batch: Batch::from(&self.scratch[..]),
                participants: self.participants.clone(),
            });
        }
    }

    /// Delivers decided batches in instance order, messages in id order.
    fn flush(&mut self, out: &mut Vec<AbOut>) {
        while let Some(batch) = self.batches.remove(&self.cursor) {
            // Proposals are assembled from an id-ordered map walk, so
            // decided batches arrive sorted: deliver straight off the shared
            // slice without the copy-and-sort detour. The unsorted fallback
            // guards against foreign proposers with different assembly.
            if batch.windows(2).all(|w| w[0].id <= w[1].id) {
                for m in batch.iter() {
                    self.deliver_one(m, out);
                }
            } else {
                let mut sorted: Vec<&Message> = batch.iter().collect();
                sorted.sort_by_key(|m| m.id);
                for m in sorted {
                    self.deliver_one(m, out);
                }
            }
            self.cursor += 1;
            self.requested = self.requested.split_off(&self.cursor);
            self.proposed = self.proposed.split_off(&self.cursor);
        }
    }

    /// Delivers one decided message (exactly once): application payloads as
    /// [`AbOut::App`], control bodies as [`AbOut::Ctrl`].
    fn deliver_one(&mut self, m: &Message, out: &mut Vec<AbOut>) {
        if !self.adelivered.insert(m.id) {
            return;
        }
        self.pending.remove(&m.id);
        match &m.body {
            Body::App(payload) => out.push(AbOut::App(Delivery {
                kind: DeliveryKind::Atomic,
                id: m.id,
                class: m.class,
                payload: *payload,
                view: self.view.id,
            })),
            Body::Join(_) | Body::Remove(_) | Body::GbEnd(_) => out.push(AbOut::Ctrl(m.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gcs_kernel::PayloadRef;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn core(i: u32, n: u32) -> AbcastCore {
        let members: Vec<ProcessId> = (0..n).map(pid).collect();
        AbcastCore::new(pid(i), Some(View::initial(members)))
    }

    fn app(id: MsgId) -> Message {
        Message {
            id,
            class: MessageClass::ABCAST,
            body: Body::App(PayloadRef::EMPTY),
        }
    }

    #[test]
    fn abcast_diffuses_and_proposes() {
        let mut c = core(0, 3);
        let out = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        let wires = out.iter().filter(|o| matches!(o, AbOut::Wire(..))).count();
        assert_eq!(wires, 2, "diffusion to both peers");
        assert!(out
            .iter()
            .any(|o| matches!(o, AbOut::Propose { instance: 0, batch, .. } if batch.len() == 1)));
    }

    #[test]
    fn decide_flushes_in_id_order_and_advances_cursor() {
        let mut c = core(0, 3);
        let m1 = app(MsgId {
            sender: pid(2),
            seq: 0,
        });
        let m2 = app(MsgId {
            sender: pid(1),
            seq: 0,
        });
        let out = c.on_decide(0, vec![m1.clone(), m2.clone()].into());
        let delivered: Vec<MsgId> = out
            .iter()
            .filter_map(|o| match o {
                AbOut::App(d) => Some(d.id),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![m2.id, m1.id], "sorted by id: p1 before p2");
        assert_eq!(c.cursor(), 1);
    }

    #[test]
    fn out_of_order_decisions_wait_for_the_gap() {
        let mut c = core(0, 3);
        let m1 = app(MsgId {
            sender: pid(1),
            seq: 0,
        });
        let m2 = app(MsgId {
            sender: pid(2),
            seq: 0,
        });
        let out = c.on_decide(1, vec![m2.clone()].into());
        assert!(
            out.iter().all(|o| !matches!(o, AbOut::App(_))),
            "batch 1 held back"
        );
        let out = c.on_decide(0, vec![m1.clone()].into());
        let delivered: Vec<MsgId> = out
            .iter()
            .filter_map(|o| match o {
                AbOut::App(d) => Some(d.id),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![m1.id, m2.id]);
        assert_eq!(c.cursor(), 2);
    }

    #[test]
    fn no_redelivery_across_batches() {
        let mut c = core(0, 3);
        let m = app(MsgId {
            sender: pid(1),
            seq: 0,
        });
        let out = c.on_decide(0, vec![m.clone()].into());
        assert_eq!(out.iter().filter(|o| matches!(o, AbOut::App(_))).count(), 1);
        let out = c.on_decide(1, vec![m.clone()].into());
        assert_eq!(out.iter().filter(|o| matches!(o, AbOut::App(_))).count(), 0);
    }

    #[test]
    fn received_data_joins_proposal_pool() {
        let mut c = core(0, 3);
        let m = app(MsgId {
            sender: pid(1),
            seq: 0,
        });
        let out = c.on_data(pid(1), m.clone());
        assert!(out.iter().any(
            |o| matches!(o, AbOut::Propose { instance: 0, batch, .. } if batch[0].id == m.id)
        ));
        // Duplicate data: no second proposal.
        let out2 = c.on_data(pid(2), m);
        assert!(out2.is_empty());
    }

    #[test]
    fn need_instance_triggers_empty_proposal() {
        let mut c = core(0, 3);
        let out = c.need_instance(0);
        assert!(out
            .iter()
            .any(|o| matches!(o, AbOut::Propose { instance: 0, batch, .. } if batch.is_empty())));
    }

    #[test]
    fn ctrl_bodies_route_to_ctrl() {
        let mut c = core(0, 3);
        let m = Message {
            id: MsgId {
                sender: pid(1),
                seq: 0,
            },
            class: MessageClass::ABCAST,
            body: Body::Join(pid(3)),
        };
        let out = c.on_decide(0, vec![m].into());
        assert!(out.iter().any(|o| matches!(o, AbOut::Ctrl(_))));
    }

    #[test]
    fn joiner_is_inactive_until_snapshot() {
        let mut c = AbcastCore::new(pid(3), None);
        assert!(!c.is_active());
        let out = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert!(!out.iter().any(|o| matches!(o, AbOut::Propose { .. })));
        let snap = SnapshotData {
            view: View {
                id: 2,
                members: vec![pid(0), pid(1), pid(3)],
            },
            next_instance: 5,
            adelivered: vec![],
            gdelivered: vec![],
            gb_epoch: 0,
            app_state: Bytes::new(),
        };
        let _ = c.install_snapshot(&snap);
        assert!(c.is_active());
        assert_eq!(c.cursor(), 5);
        assert_eq!(c.view().id, 2);
    }

    #[test]
    fn removed_member_deactivates_on_view_change() {
        let mut c = core(0, 3);
        c.set_view(View {
            id: 1,
            members: vec![pid(1), pid(2)],
        });
        assert!(!c.is_active());
    }

    fn core_with(i: u32, n: u32, depth: usize, policy: BatchPolicy) -> AbcastCore {
        let members: Vec<ProcessId> = (0..n).map(pid).collect();
        AbcastCore::with_policy(
            pid(i),
            Some(View::initial(members)),
            RelayFanout::All,
            depth,
            policy,
        )
    }

    fn proposals(out: &[AbOut]) -> Vec<(InstanceId, usize)> {
        out.iter()
            .filter_map(|o| match o {
                AbOut::Propose {
                    instance, batch, ..
                } => Some((*instance, batch.len())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn pipeline_window_runs_disjoint_instances_concurrently() {
        let policy = BatchPolicy {
            max_msgs: 1,
            ..BatchPolicy::default()
        };
        let mut c = core_with(0, 3, 2, policy);
        let out1 = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert_eq!(proposals(&out1), vec![(0, 1)]);
        // A second message while instance 0 is undecided: the window opens
        // instance 1 with the next (disjoint) chunk.
        let out2 = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert_eq!(proposals(&out2), vec![(1, 1)]);
        // Depth exhausted: a third message must wait for a decision.
        let out3 = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert_eq!(proposals(&out3), vec![]);
    }

    #[test]
    fn losing_proposal_returns_messages_to_the_pool() {
        let mut c = core_with(0, 3, 1, BatchPolicy::default());
        let out = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        let mine = match proposals(&out)[..] {
            [(0, 1)] => MsgId {
                sender: pid(0),
                seq: 0,
            },
            _ => panic!("expected our one-message proposal for instance 0"),
        };
        // Instance 0 decides a foreign batch: our message was not ordered
        // and must ride the next proposal.
        let other = app(MsgId {
            sender: pid(1),
            seq: 0,
        });
        let out = c.on_decide(0, vec![other].into());
        assert!(
            proposals(&out)
                .iter()
                .any(|&(instance, len)| instance == 1 && len == 1),
            "leftover re-proposed for instance 1: {out:?}"
        );
        let reproposed = out
            .iter()
            .any(|o| matches!(o, AbOut::Propose { instance: 1, batch, .. } if batch[0].id == mine));
        assert!(reproposed);
    }

    #[test]
    fn byte_cap_closes_batches_but_never_starves_a_fat_message() {
        let policy = BatchPolicy {
            max_bytes: 1,
            ..BatchPolicy::default()
        };
        let mut c = core_with(0, 3, 4, policy);
        // Two fat (non-empty-body) messages: the join/remove bodies weigh 8
        // bytes each, over the 1-byte cap — yet each batch still carries one.
        let out1 = c.abcast(MessageClass::ABCAST, Body::Join(pid(7)));
        let out2 = c.abcast(MessageClass::ABCAST, Body::Join(pid(8)));
        assert_eq!(proposals(&out1), vec![(0, 1)]);
        assert_eq!(proposals(&out2), vec![(1, 1)]);
    }

    #[test]
    fn deadline_holds_a_non_full_batch_then_force_proposes() {
        let policy = BatchPolicy {
            max_msgs: 4,
            max_delay: TimeDelta::from_millis(2),
            ..BatchPolicy::default()
        };
        let mut c = core_with(0, 3, 1, policy);
        let out = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert_eq!(proposals(&out), vec![], "non-full batch held open");
        assert!(
            out.iter()
                .any(|o| matches!(o, AbOut::ArmBatchTimer(d) if *d == TimeDelta::from_millis(2))),
            "deadline armed: {out:?}"
        );
        // A second arm is not emitted while one is outstanding.
        let out2 = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert!(out2
            .iter()
            .all(|o| !matches!(o, AbOut::ArmBatchTimer(_) | AbOut::Propose { .. })));
        let mut out3 = Vec::new();
        c.on_batch_deadline_into(&mut out3);
        assert_eq!(proposals(&out3), vec![(0, 2)], "deadline flushes the hold");
    }

    #[test]
    fn full_batch_proposes_without_waiting_for_the_deadline() {
        let policy = BatchPolicy {
            max_msgs: 2,
            max_delay: TimeDelta::from_millis(2),
            ..BatchPolicy::default()
        };
        let mut c = core_with(0, 3, 1, policy);
        let _ = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        let out = c.abcast(MessageClass::ABCAST, Body::App(PayloadRef::EMPTY));
        assert_eq!(proposals(&out), vec![(0, 2)], "count cap trips the batch");
        // The stale deadline is a no-op once the batch went out.
        let mut out2 = Vec::new();
        c.on_batch_deadline_into(&mut out2);
        assert_eq!(proposals(&out2), vec![]);
    }
}
