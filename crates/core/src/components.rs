//! Kernel component adapters: the boxes of Fig 9.
//!
//! Each adapter wraps one sans-I/O core and translates between the shared
//! event catalog ([`Ev`]) and the core's typed inputs/outputs. The component
//! graph per process is:
//!
//! ```text
//!                application (inject / output)
//!                     │Gbcast/Rbcast        │Abcast      │JoinVia/Remove
//!   ┌─────────────────▼─────┐   ┌───────────▼───────┐   ┌▼──────────────┐
//!   │ generic (GB, §3.2)    │──▶│ abcast (CT, §3.1) │◀──│ membership    │
//!   └───────────┬───────────┘   └──┬──────▲─────────┘   └───▲───────────┘
//!               │ acks/data        │propose│decide          │ Exclude
//!               │                ┌─▼───────┴──┐         ┌───┴───────────┐
//!               │                │ consensus  │◀───────┐│ monitoring    │
//!               │                └─┬──────────┘ suspect└┴───▲───────▲───┘
//!               │                  │                  Suspect│  Stuck│
//!   ┌───────────▼──────────────────▼──────────┐   ┌──────────┴──┐    │
//!   │ rc (reliable channel, §3.3.1)           │   │ fd (◇S)     │────┘
//!   └───────────────────┬─────────────────────┘   └──────┬──────┘
//!                       │ Packet                         │ Heartbeat
//!                     unreliable transport (the simulator network)
//! ```

use gcs_consensus::{ConsensusManager, CtMsg, InstanceId, ManagerOut};
use gcs_fd::{FdMode, FdOut, HeartbeatFd, MonitorClass};
use gcs_kernel::{Component, Context, ProcessId, Time, TimeDelta, TimerId};
use gcs_net::{RcConfig, RcOut, ReliableChannel};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::abcast::{AbOut, AbcastCore, BatchPolicy};
use crate::generic::{GbOut, GenericCore};
use crate::membership::{MbOut, MembershipCore};
use crate::monitoring::{MonOut, MonitoringCore, MonitoringPolicy};
use crate::rbcast::RelayFanout;
use crate::types::{
    AbMsg, Batch, Body, Ev, GbMsg, MbMsg, MessageClass, MonMsg, SnapshotData, View, WireMsg,
};

/// Component names (routing targets within a process).
pub mod names {
    /// Reliable channel.
    pub const RC: &str = "rc";
    /// Failure detector.
    pub const FD: &str = "fd";
    /// Consensus.
    pub const CONSENSUS: &str = "consensus";
    /// Atomic broadcast.
    pub const ABCAST: &str = "abcast";
    /// Generic broadcast.
    pub const GENERIC: &str = "generic";
    /// Group membership.
    pub const MEMBERSHIP: &str = "membership";
    /// Monitoring.
    pub const MONITORING: &str = "monitoring";
}

fn route_wire(wire: &WireMsg) -> &'static str {
    match wire {
        WireMsg::Ct { .. } => names::CONSENSUS,
        WireMsg::Ab(_) => names::ABCAST,
        WireMsg::Gb(_) => names::GENERIC,
        WireMsg::Mb(_) => names::MEMBERSHIP,
        WireMsg::Mon(_) => names::MONITORING,
    }
}

// ---------------------------------------------------------------------------
// Reliable channel
// ---------------------------------------------------------------------------

/// Adapter around [`ReliableChannel`] (Fig 9 "Reliable Channel").
pub struct RcComponent {
    rc: ReliableChannel<WireMsg>,
    tick: TimeDelta,
    /// Reused tick-output buffer (steady-state ticks allocate nothing).
    scratch: Vec<RcOut<WireMsg>>,
}

impl RcComponent {
    /// Creates the reliable-channel component for `me`.
    pub fn new(me: ProcessId, config: RcConfig) -> Self {
        let tick = config.tick_interval;
        RcComponent {
            rc: ReliableChannel::new(me, config),
            tick,
            scratch: Vec::new(),
        }
    }

    fn apply(&mut self, outs: impl IntoIterator<Item = RcOut<WireMsg>>, ctx: &mut Context<'_, Ev>) {
        for o in outs {
            match o {
                RcOut::Transmit { to, packet } => ctx.send(to, names::RC, Ev::Packet(packet)),
                RcOut::Deliver { from, msg } => {
                    ctx.emit(route_wire(&msg), Ev::Net(from, msg));
                }
                RcOut::Stuck { peer, since } => {
                    ctx.emit(names::MONITORING, Ev::RcStuck(peer, since))
                }
                RcOut::Unstuck { peer } => ctx.emit(names::MONITORING, Ev::RcUnstuck(peer)),
            }
        }
    }
}

impl Component<Ev> for RcComponent {
    fn name(&self) -> &'static str {
        names::RC
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
        ctx.set_timer(self.tick);
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        match event {
            Ev::RcSend(to, wire) => {
                let outs = self.rc.send(to, wire, ctx.now());
                self.apply(outs, ctx);
            }
            Ev::Forget(p) => self.rc.forget_peer(p),
            _ => {}
        }
    }

    fn on_message(&mut self, from: ProcessId, event: Ev, ctx: &mut Context<'_, Ev>) {
        if let Ev::Packet(packet) = event {
            let outs = self.rc.on_packet(from, packet, ctx.now());
            self.apply(outs, ctx);
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, Ev>) {
        let mut outs = std::mem::take(&mut self.scratch);
        self.rc.on_tick_into(ctx.now(), &mut outs);
        self.apply(outs.drain(..), ctx);
        self.scratch = outs;
        ctx.set_timer(self.tick);
    }
}

// ---------------------------------------------------------------------------
// Failure detector
// ---------------------------------------------------------------------------

/// Adapter around [`HeartbeatFd`] (Fig 9 "Failure Detection").
pub struct FdComponent {
    fd: HeartbeatFd,
    initial_peers: Vec<ProcessId>,
    consensus_timeout: TimeDelta,
    monitoring_timeout: TimeDelta,
    /// Emit `Ev::Suspect`/`Ev::Restore` of the consensus class as trace
    /// outputs too (crash-detection latency measurement in scenarios).
    trace_suspicions: bool,
    /// Reused output buffer (heartbeat ticks are the most frequent event in
    /// the whole system; they must not allocate).
    scratch: Vec<FdOut>,
    /// Reused heartbeat fan-out list.
    heartbeat_to: Vec<ProcessId>,
}

impl FdComponent {
    /// Creates the failure-detector component.
    pub fn new(
        me: ProcessId,
        initial_peers: Vec<ProcessId>,
        heartbeat_interval: TimeDelta,
        consensus_timeout: TimeDelta,
        monitoring_timeout: TimeDelta,
    ) -> Self {
        Self::with_mode(
            me,
            initial_peers,
            heartbeat_interval,
            consensus_timeout,
            monitoring_timeout,
            FdMode::AllPairs,
            false,
        )
    }

    /// [`FdComponent::new`] with an explicit monitoring mode and suspicion
    /// tracing.
    pub fn with_mode(
        me: ProcessId,
        initial_peers: Vec<ProcessId>,
        heartbeat_interval: TimeDelta,
        consensus_timeout: TimeDelta,
        monitoring_timeout: TimeDelta,
        mode: FdMode,
        trace_suspicions: bool,
    ) -> Self {
        FdComponent {
            fd: HeartbeatFd::with_mode(me, heartbeat_interval, mode),
            initial_peers,
            consensus_timeout,
            monitoring_timeout,
            trace_suspicions,
            scratch: Vec::new(),
            heartbeat_to: Vec::new(),
        }
    }

    fn apply(&mut self, outs: impl IntoIterator<Item = FdOut>, ctx: &mut Context<'_, Ev>) {
        // Heartbeats fan out to every peer each interval: batch them into a
        // single broadcast envelope instead of one send (and one per-peer
        // event clone) each. The fan-out list is a reused scratch buffer.
        let mut heartbeat_to = std::mem::take(&mut self.heartbeat_to);
        heartbeat_to.clear();
        for o in outs {
            match o {
                FdOut::SendHeartbeat { to } => heartbeat_to.push(to),
                FdOut::Suspect { class, peer } => {
                    let target = if class == MonitorClass::CONSENSUS {
                        names::CONSENSUS
                    } else {
                        names::MONITORING
                    };
                    ctx.emit(target, Ev::Suspect(class, peer));
                    if self.trace_suspicions && class == MonitorClass::CONSENSUS {
                        ctx.output(Ev::Suspect(class, peer));
                    }
                }
                FdOut::Restore { class, peer } => {
                    let target = if class == MonitorClass::CONSENSUS {
                        names::CONSENSUS
                    } else {
                        names::MONITORING
                    };
                    ctx.emit(target, Ev::Restore(class, peer));
                    if self.trace_suspicions && class == MonitorClass::CONSENSUS {
                        ctx.output(Ev::Restore(class, peer));
                    }
                }
            }
        }
        if !heartbeat_to.is_empty() {
            match self.fd.mode() {
                FdMode::AllPairs => {
                    ctx.send_to_all(heartbeat_to.iter().copied(), names::FD, Ev::Heartbeat);
                }
                FdMode::Gossip { .. } => {
                    // One shared digest per tick: the fan-out clones an Arc,
                    // not the digest itself.
                    let digest: Arc<[(ProcessId, Time)]> = self.fd.digest().into();
                    ctx.send_to_all(
                        heartbeat_to.iter().copied(),
                        names::FD,
                        Ev::FdGossip(digest),
                    );
                }
            }
        }
        self.heartbeat_to = heartbeat_to;
    }
}

impl Component<Ev> for FdComponent {
    fn name(&self) -> &'static str {
        names::FD
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
        self.fd
            .register_class(MonitorClass::CONSENSUS, self.consensus_timeout);
        self.fd
            .register_class(MonitorClass::MONITORING, self.monitoring_timeout);
        let peers = std::mem::take(&mut self.initial_peers);
        self.fd.set_peers(peers, ctx.now());
        ctx.set_timer(self.fd.interval());
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        if let Ev::ViewChanged(v) = event {
            self.fd.set_peers(v.members, ctx.now());
        }
    }

    fn on_message(&mut self, from: ProcessId, event: Ev, ctx: &mut Context<'_, Ev>) {
        match event {
            Ev::Heartbeat => {
                let mut outs = std::mem::take(&mut self.scratch);
                self.fd.on_heartbeat_into(from, ctx.now(), &mut outs);
                self.apply(outs.drain(..), ctx);
                self.scratch = outs;
            }
            Ev::FdGossip(digest) => {
                let mut outs = std::mem::take(&mut self.scratch);
                self.fd.on_gossip_into(from, &digest, ctx.now(), &mut outs);
                self.apply(outs.drain(..), ctx);
                self.scratch = outs;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, Ev>) {
        let mut outs = std::mem::take(&mut self.scratch);
        self.fd.on_tick_into(ctx.now(), &mut outs);
        self.apply(outs.drain(..), ctx);
        self.scratch = outs;
        ctx.set_timer(self.fd.interval());
    }
}

// ---------------------------------------------------------------------------
// Consensus
// ---------------------------------------------------------------------------

/// How many decided instances the consensus manager keeps cached behind the
/// newest proposal for lagging-peer catch-up replies. Far larger than any
/// catalog run's instance count (so recorded runs never prune and stay
/// bit-identical), yet it bounds decision memory on long pipelined
/// saturation runs instead of growing with the run.
const DECISION_KEEP: InstanceId = 1024;

/// Adapter around [`ConsensusManager`] (Fig 9 "Consensus").
pub struct ConsensusComponent {
    mgr: ConsensusManager<Batch>,
    /// Messages for instances the atomic-broadcast layer has not started.
    buffered: BTreeMap<InstanceId, Vec<(ProcessId, CtMsg<Batch>)>>,
    /// Reused manager-output buffer.
    scratch: Vec<ManagerOut<Batch>>,
}

impl ConsensusComponent {
    /// Creates the consensus component for `me`.
    pub fn new(me: ProcessId) -> Self {
        Self::with_echo_fanout(me, None)
    }

    /// Creates the component with a bounded decide-echo fan-out (`None` =
    /// echo decisions to every participant).
    pub fn with_echo_fanout(me: ProcessId, echo_fanout: Option<usize>) -> Self {
        ConsensusComponent {
            mgr: ConsensusManager::with_echo_fanout(me, echo_fanout),
            buffered: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    fn apply(
        &mut self,
        outs: impl IntoIterator<Item = ManagerOut<Batch>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        for o in outs {
            match o {
                ManagerOut::Send { to, instance, msg } => {
                    ctx.emit(names::RC, Ev::RcSend(to, WireMsg::Ct { instance, msg }));
                }
                ManagerOut::Decided { instance, value } => {
                    ctx.emit(names::ABCAST, Ev::Decide(instance, value));
                }
            }
        }
    }
}

impl Component<Ev> for ConsensusComponent {
    fn name(&self) -> &'static str {
        names::CONSENSUS
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        let mut outs = std::mem::take(&mut self.scratch);
        debug_assert!(outs.is_empty());
        match event {
            Ev::Propose(instance, batch, participants) => {
                self.mgr
                    .propose_into(instance, batch, &participants, &mut outs);
                self.apply(outs.drain(..), ctx);
                if let Some(buf) = self.buffered.remove(&instance) {
                    for (from, msg) in buf {
                        let _ = self.mgr.on_msg_into(instance, from, msg, &mut outs);
                        self.apply(outs.drain(..), ctx);
                    }
                }
                // The proposal window only moves forward: decisions (and
                // buffered foreign traffic) more than DECISION_KEEP
                // instances behind it will never be asked for again by a
                // peer inside the catch-up window.
                let floor = instance.saturating_sub(DECISION_KEEP);
                if floor > 0 {
                    self.mgr.prune_below(floor);
                    self.buffered = self.buffered.split_off(&floor);
                }
            }
            Ev::Net(from, WireMsg::Ct { instance, msg }) => {
                let rejected = self.mgr.on_msg_into(instance, from, msg, &mut outs);
                self.apply(outs.drain(..), ctx);
                if let Some(msg) = rejected {
                    self.buffered.entry(instance).or_default().push((from, msg));
                    ctx.emit(names::ABCAST, Ev::NeedInstance(instance));
                }
            }
            Ev::Suspect(MonitorClass::CONSENSUS, p) => {
                self.mgr.suspect_into(p, &mut outs);
                self.apply(outs.drain(..), ctx);
            }
            Ev::Restore(MonitorClass::CONSENSUS, p) => self.mgr.restore(p),
            _ => {}
        }
        self.scratch = outs;
    }
}

// ---------------------------------------------------------------------------
// Atomic broadcast
// ---------------------------------------------------------------------------

/// Adapter around [`AbcastCore`] (Fig 9 "Atomic Broadcast").
pub struct AbcastComponent {
    core: AbcastCore,
    /// Reused core-output buffer.
    scratch: Vec<AbOut>,
}

impl AbcastComponent {
    /// Creates the atomic-broadcast component.
    pub fn new(me: ProcessId, initial_view: Option<View>) -> Self {
        Self::with_relay(me, initial_view, RelayFanout::All)
    }

    /// Creates the component with an explicit reliable-broadcast relay
    /// policy (see [`RelayFanout`]).
    pub fn with_relay(me: ProcessId, initial_view: Option<View>, relay: RelayFanout) -> Self {
        Self::with_policy(me, initial_view, relay, 1, BatchPolicy::default())
    }

    /// Creates the component with a consensus pipeline depth and batch
    /// policy on top of the relay policy (see [`AbcastCore::with_policy`]).
    pub fn with_policy(
        me: ProcessId,
        initial_view: Option<View>,
        relay: RelayFanout,
        depth: usize,
        policy: BatchPolicy,
    ) -> Self {
        AbcastComponent {
            core: AbcastCore::with_policy(me, initial_view, relay, depth, policy),
            scratch: Vec::new(),
        }
    }

    fn apply(&mut self, outs: impl IntoIterator<Item = AbOut>, ctx: &mut Context<'_, Ev>) {
        for o in outs {
            match o {
                AbOut::Wire(to, wire) => ctx.emit(names::RC, Ev::RcSend(to, wire)),
                AbOut::Propose {
                    instance,
                    batch,
                    participants,
                } => {
                    ctx.emit(names::CONSENSUS, Ev::Propose(instance, batch, participants));
                }
                AbOut::App(d) => ctx.output(Ev::Deliver(d)),
                AbOut::Ctrl(m) => {
                    let target = match &m.body {
                        Body::GbEnd(_) => names::GENERIC,
                        _ => names::MEMBERSHIP,
                    };
                    ctx.emit(target, Ev::CtrlDelivered(m));
                }
                AbOut::ArmBatchTimer(after) => {
                    let _ = ctx.set_timer(after);
                }
            }
        }
    }
}

impl Component<Ev> for AbcastComponent {
    fn name(&self) -> &'static str {
        names::ABCAST
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        let mut outs = std::mem::take(&mut self.scratch);
        debug_assert!(outs.is_empty());
        match event {
            Ev::Abcast(payload) => {
                self.core
                    .abcast_into(MessageClass::ABCAST, Body::App(payload), &mut outs);
            }
            Ev::AbcastCtrl(class, body) => {
                self.core.abcast_into(class, body, &mut outs);
            }
            Ev::Net(from, WireMsg::Ab(AbMsg::Data(m))) => {
                self.core.on_data_into(from, m, &mut outs);
            }
            Ev::Decide(instance, batch) => {
                self.core.on_decide_into(instance, batch, &mut outs);
            }
            Ev::NeedInstance(instance) => {
                self.core.need_instance_into(instance, &mut outs);
            }
            Ev::ViewChanged(v) => self.core.set_view(v),
            Ev::InstallSnapshot(snap) => {
                self.core.install_snapshot_into(&snap, &mut outs);
            }
            Ev::SnapFill { joiner, mut snap } => {
                snap.next_instance = self.core.cursor();
                snap.adelivered = self.core.adelivered();
                ctx.emit(names::GENERIC, Ev::SnapFill { joiner, snap });
            }
            _ => {}
        }
        self.apply(outs.drain(..), ctx);
        self.scratch = outs;
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, Ev>) {
        // The batch-deadline timer (armed via [`AbOut::ArmBatchTimer`]):
        // force-propose whatever the deadline caught. Never armed under the
        // default eager batch policy.
        let mut outs = std::mem::take(&mut self.scratch);
        debug_assert!(outs.is_empty());
        self.core.on_batch_deadline_into(&mut outs);
        self.apply(outs.drain(..), ctx);
        self.scratch = outs;
    }
}

// ---------------------------------------------------------------------------
// Generic broadcast
// ---------------------------------------------------------------------------

/// Adapter around [`GenericCore`] (Fig 7/9 "Generic Broadcast").
pub struct GenericComponent {
    core: GenericCore,
    /// Snapshots awaiting an epoch boundary (assembly is deferred while the
    /// epoch is mid-closure so the joiner starts on a clean boundary).
    deferred: Vec<(ProcessId, Box<SnapshotData>)>,
    /// Reused core-output buffer.
    scratch: Vec<GbOut>,
}

impl GenericComponent {
    /// Creates the generic-broadcast component.
    pub fn new(core: GenericCore) -> Self {
        GenericComponent {
            core,
            deferred: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn apply(&mut self, outs: impl IntoIterator<Item = GbOut>, ctx: &mut Context<'_, Ev>) {
        for o in outs {
            match o {
                GbOut::Wire(to, wire) => ctx.emit(names::RC, Ev::RcSend(to, wire)),
                GbOut::Escalate(body) => {
                    ctx.emit(names::ABCAST, Ev::AbcastCtrl(MessageClass::ABCAST, body));
                }
                GbOut::Deliver(d) => ctx.output(Ev::Deliver(d)),
            }
        }
    }

    fn flush_deferred(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.core.is_frozen() {
            return;
        }
        for (joiner, mut snap) in std::mem::take(&mut self.deferred) {
            snap.gb_epoch = self.core.epoch();
            snap.gdelivered = self.core.gdelivered();
            ctx.emit(names::MEMBERSHIP, Ev::SnapReady { joiner, snap });
        }
    }
}

impl Component<Ev> for GenericComponent {
    fn name(&self) -> &'static str {
        names::GENERIC
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        let mut outs = std::mem::take(&mut self.scratch);
        debug_assert!(outs.is_empty());
        match event {
            Ev::Gbcast(class, payload) => {
                self.core.gbcast_into(class, Body::App(payload), &mut outs);
                self.apply(outs.drain(..), ctx);
            }
            Ev::Rbcast(payload) => {
                self.core
                    .gbcast_into(MessageClass::RBCAST, Body::App(payload), &mut outs);
                self.apply(outs.drain(..), ctx);
            }
            Ev::Net(from, WireMsg::Gb(msg)) => {
                match msg {
                    GbMsg::Data(m) => self.core.on_data_into(from, m, &mut outs),
                    GbMsg::Ack { epoch, id } => self.core.on_ack_into(from, epoch, id, &mut outs),
                };
                self.apply(outs.drain(..), ctx);
            }
            Ev::CtrlDelivered(m) => {
                if let Body::GbEnd(end) = m.body {
                    self.core.on_end_delivered_into(m.id.sender, end, &mut outs);
                    self.apply(outs.drain(..), ctx);
                    self.flush_deferred(ctx);
                }
            }
            Ev::ViewChanged(v) => {
                let outs2 = self.core.on_view_change(v);
                self.apply(outs2, ctx);
            }
            Ev::InstallSnapshot(snap) => {
                self.core
                    .install_snapshot(&snap.view, snap.gb_epoch, &snap.gdelivered);
            }
            Ev::SnapFill { joiner, snap } => {
                self.deferred.push((joiner, snap));
                self.flush_deferred(ctx);
            }
            _ => {}
        }
        debug_assert!(outs.is_empty());
        self.scratch = outs;
    }
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

/// Adapter around [`MembershipCore`] (Fig 9 "Group Membership").
pub struct MembershipComponent {
    core: MembershipCore,
}

impl MembershipComponent {
    /// Creates the membership component.
    pub fn new(core: MembershipCore) -> Self {
        MembershipComponent { core }
    }

    fn apply(&mut self, outs: Vec<MbOut>, ctx: &mut Context<'_, Ev>) {
        for o in outs {
            match o {
                MbOut::Abcast(body) => {
                    ctx.emit(names::ABCAST, Ev::AbcastCtrl(MessageClass::ABCAST, body));
                }
                MbOut::Wire(to, wire) => ctx.emit(names::RC, Ev::RcSend(to, wire)),
                MbOut::ViewChanged(v) => {
                    for target in [names::ABCAST, names::GENERIC, names::FD, names::MONITORING] {
                        ctx.emit(target, Ev::ViewChanged(v.clone()));
                    }
                    ctx.output(Ev::ViewInstalled(v));
                }
                MbOut::AssembleSnapshot { joiner, snap } => {
                    ctx.emit(names::ABCAST, Ev::SnapFill { joiner, snap });
                }
                MbOut::Excluded => ctx.output(Ev::Excluded),
                MbOut::Forget(p) => ctx.emit(names::RC, Ev::Forget(p)),
            }
        }
    }
}

impl Component<Ev> for MembershipComponent {
    fn name(&self) -> &'static str {
        names::MEMBERSHIP
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        match event {
            Ev::JoinVia(contact) => {
                let outs = self.core.join_via(contact);
                self.apply(outs, ctx);
            }
            Ev::RemoveMember(p) | Ev::Exclude(p) => {
                let outs = self.core.remove(p);
                self.apply(outs, ctx);
            }
            Ev::Net(from, WireMsg::Mb(msg)) => match msg {
                MbMsg::JoinRequest => {
                    let outs = self.core.on_join_request(from);
                    self.apply(outs, ctx);
                }
                MbMsg::Snapshot(snap) => {
                    let outs = self.core.on_snapshot(&snap);
                    // Install protocol state before announcing the view.
                    ctx.emit(names::ABCAST, Ev::InstallSnapshot(snap.clone()));
                    ctx.emit(names::GENERIC, Ev::InstallSnapshot(snap));
                    self.apply(outs, ctx);
                }
            },
            Ev::CtrlDelivered(m) => {
                let outs = self.core.on_ctrl(&m);
                self.apply(outs, ctx);
            }
            Ev::SnapReady { joiner, snap } => {
                ctx.emit(
                    names::RC,
                    Ev::RcSend(joiner, WireMsg::Mb(MbMsg::Snapshot(snap))),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Monitoring
// ---------------------------------------------------------------------------

/// Adapter around [`MonitoringCore`] (Fig 9 "Monitoring").
pub struct MonitoringComponent {
    core: MonitoringCore,
}

impl MonitoringComponent {
    /// Creates the monitoring component.
    pub fn new(me: ProcessId, members: Vec<ProcessId>, policy: MonitoringPolicy) -> Self {
        MonitoringComponent {
            core: MonitoringCore::new(me, members, policy),
        }
    }

    fn apply(&mut self, outs: Vec<MonOut>, ctx: &mut Context<'_, Ev>) {
        for o in outs {
            match o {
                MonOut::Wire(to, wire) => ctx.emit(names::RC, Ev::RcSend(to, wire)),
                MonOut::Exclude(p) => ctx.emit(names::MEMBERSHIP, Ev::Exclude(p)),
            }
        }
    }
}

impl Component<Ev> for MonitoringComponent {
    fn name(&self) -> &'static str {
        names::MONITORING
    }

    fn on_event(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        match event {
            Ev::Suspect(MonitorClass::MONITORING, p) => {
                let outs = self.core.on_fd_suspect(p);
                self.apply(outs, ctx);
            }
            Ev::Restore(MonitorClass::MONITORING, p) => self.core.on_fd_restore(p),
            Ev::RcStuck(p, _) => {
                let outs = self.core.on_stuck(p);
                self.apply(outs, ctx);
            }
            Ev::RcUnstuck(p) => self.core.on_unstuck(p),
            Ev::Net(from, WireMsg::Mon(MonMsg::Report { peer })) => {
                let outs = self.core.on_report(from, peer);
                self.apply(outs, ctx);
            }
            Ev::ViewChanged(v) => self.core.set_members(v.members),
            _ => {}
        }
    }
}
