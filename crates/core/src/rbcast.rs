//! Reliable broadcast by diffusion — the dissemination substrate shared by
//! atomic broadcast and generic broadcast.
//!
//! Every process relays the first copy of a message it receives to all other
//! group members (over reliable channels). This yields *uniform* reliable
//! broadcast in the crash-stop model: if any process delivers `m` — even one
//! that crashes immediately after — every correct process eventually
//! delivers `m`, because the delivering process's relay or the original send
//! reaches some correct process which relays in turn.

use gcs_kernel::{FxHashSet, ProcessId};

use crate::types::{Message, MsgId};

/// How a first-copy receiver re-forwards a diffused message.
///
/// Classic diffusion relays to *every* peer: n−1 receivers each re-sending
/// n−2 copies makes one broadcast cost O(n²) messages — the redundancy that
/// tolerates an origin crashing mid-send, bought at a price that collapses
/// large groups. Bounded relay keeps the origin's full fan-out but has each
/// first-copy receiver re-forward to only its `k` *ring successors* (in
/// sorted process order, wrapping). Coverage survives origin crash: the
/// partial direct fan-out seeds contiguous ring segments, and first-copy
/// relays extend each segment by `k` until the ring closes — any crash
/// pattern short of `k` consecutive failed processes still reaches everyone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayFanout {
    /// Relay to all peers (classic diffusion, O(n²) messages per
    /// broadcast).
    All,
    /// Relay to this many ring successors (O(n·k) messages per broadcast).
    Bounded(usize),
}

/// Outcome of feeding one received message to [`Rbcast::on_data`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RbReceipt {
    /// `Some` when this is the first copy (deliver it); `None` on duplicates.
    pub deliver: Option<Message>,
    /// Relay targets for the first copy (empty on duplicates).
    pub relay_to: Vec<ProcessId>,
}

/// Diffusion-based reliable broadcast over reliable point-to-point channels.
#[derive(Debug)]
pub struct Rbcast {
    me: ProcessId,
    peers: Vec<ProcessId>,
    relay: RelayFanout,
    /// The peers in sorted order — the ring bounded relay walks. (View
    /// member order is the agreed primary order, not id order, so the ring
    /// is materialized separately at `set_peers`.)
    ring: Vec<ProcessId>,
    /// Index into `ring` of `me`'s first ring successor (the insertion
    /// point of `me`) — precomputed for the bounded-relay hot path.
    ring_start: usize,
    seen: FxHashSet<MsgId>,
    next_seq: u64,
}

impl Rbcast {
    /// Creates a broadcast module for `me` with relay-to-all diffusion;
    /// peers come from the view.
    pub fn new(me: ProcessId) -> Self {
        Self::with_relay(me, RelayFanout::All)
    }

    /// Creates a broadcast module with an explicit relay policy.
    pub fn with_relay(me: ProcessId, relay: RelayFanout) -> Self {
        Rbcast {
            me,
            peers: Vec::new(),
            relay,
            ring: Vec::new(),
            ring_start: 0,
            seen: FxHashSet::default(),
            next_seq: 0,
        }
    }

    /// Updates the destination set (driven by view changes). `me` is kept
    /// out of the peer list; local delivery is immediate at broadcast time.
    pub fn set_peers(&mut self, members: &[ProcessId]) {
        self.peers = members.iter().copied().filter(|&p| p != self.me).collect();
        self.ring = self.peers.clone();
        self.ring.sort_unstable();
        self.ring_start = self.ring.partition_point(|&p| p < self.me);
    }

    /// The current relay/broadcast peer set.
    pub fn peers(&self) -> &[ProcessId] {
        &self.peers
    }

    /// Allocates the next message id for this sender.
    pub fn next_id(&mut self) -> MsgId {
        let id = MsgId {
            sender: self.me,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        id
    }

    /// Broadcasts `message`: marks it seen locally (the caller delivers it
    /// to itself directly) and returns the send targets — a borrow of the
    /// peer list, so broadcasting allocates nothing.
    pub fn broadcast(&mut self, message: &Message) -> &[ProcessId] {
        self.seen.insert(message.id);
        &self.peers
    }

    /// Handles a received copy of `message`: first copies are delivered and
    /// relayed per the configured [`RelayFanout`], always excluding the
    /// transport-level sender and the origin (both already have the
    /// message).
    pub fn on_data(&mut self, from: ProcessId, message: Message) -> RbReceipt {
        if !self.seen.insert(message.id) {
            return RbReceipt {
                deliver: None,
                relay_to: Vec::new(),
            };
        }
        let relay_to: Vec<ProcessId> = match self.relay {
            RelayFanout::All => self
                .peers
                .iter()
                .copied()
                .filter(|&p| p != from && p != message.id.sender)
                .collect(),
            RelayFanout::Bounded(k) => {
                let m = self.ring.len();
                (0..k.min(m))
                    .map(|j| self.ring[(self.ring_start + j) % m])
                    .filter(|&p| p != from && p != message.id.sender)
                    .collect()
            }
        };
        RbReceipt {
            deliver: Some(message),
            relay_to,
        }
    }

    /// Whether `id` has been seen (sent or received).
    pub fn seen(&self, id: MsgId) -> bool {
        self.seen.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Body, MessageClass};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg(id: MsgId) -> Message {
        Message {
            id,
            class: MessageClass::RBCAST,
            body: Body::App(gcs_kernel::PayloadRef::EMPTY),
        }
    }

    #[test]
    fn broadcast_targets_all_peers_but_self() {
        let mut rb = Rbcast::new(pid(0));
        rb.set_peers(&[pid(0), pid(1), pid(2)]);
        let id = rb.next_id();
        assert_eq!(
            id,
            MsgId {
                sender: pid(0),
                seq: 0
            }
        );
        let targets = rb.broadcast(&msg(id));
        assert_eq!(targets, vec![pid(1), pid(2)]);
        assert!(rb.seen(id));
    }

    #[test]
    fn first_copy_delivers_and_relays_skipping_source() {
        let mut rb = Rbcast::new(pid(2));
        rb.set_peers(&[pid(0), pid(1), pid(2), pid(3)]);
        let id = MsgId {
            sender: pid(0),
            seq: 5,
        };
        let r = rb.on_data(pid(1), msg(id));
        assert!(r.deliver.is_some());
        // Relays to everyone except self, the relayer (p1) and origin (p0).
        assert_eq!(r.relay_to, vec![pid(3)]);
        // Second copy: silence.
        let r2 = rb.on_data(pid(3), msg(id));
        assert!(r2.deliver.is_none());
        assert!(r2.relay_to.is_empty());
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut rb = Rbcast::new(pid(1));
        assert_eq!(rb.next_id().seq, 0);
        assert_eq!(rb.next_id().seq, 1);
    }
}
