//! The monitoring component — exclusion policy, decoupled from failure
//! detection (§3.3.2).
//!
//! Suspicions reach monitoring from two independent sources (§4.2):
//!
//! 1. the **failure detector's long-timeout class** (order of minutes in the
//!    paper, configurable here), and
//! 2. the **reliable channel's output-triggered suspicion** — a peer that
//!    stops acknowledging for too long (\[12\]).
//!
//! The policy is deliberately conservative: a process is excluded only when
//! enough distinct members report it (threshold `k`), optionally counting
//! output-triggered reports. Exclusion means asking the membership component
//! to `remove` the process — never killing it, unlike the perfect-failure-
//! detector emulation of traditional architectures.

use std::collections::{BTreeMap, BTreeSet};

use gcs_kernel::ProcessId;

use crate::types::{MonMsg, WireMsg};

/// Exclusion policy configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitoringPolicy {
    /// Exclude a peer once this many distinct members (including self)
    /// report it. `1` = any long-timeout suspicion excludes.
    pub threshold: usize,
    /// Count failure-detector (long-timeout class) suspicions.
    pub use_fd: bool,
    /// Count reliable-channel output-triggered suspicions.
    pub use_output_triggered: bool,
}

impl Default for MonitoringPolicy {
    fn default() -> Self {
        MonitoringPolicy {
            threshold: 1,
            use_fd: true,
            use_output_triggered: true,
        }
    }
}

/// An instruction produced by the monitoring core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonOut {
    /// Gossip a suspicion report to a fellow member.
    Wire(ProcessId, WireMsg),
    /// Ask the membership component to remove `peer` (`remove` in Fig 9).
    Exclude(ProcessId),
}

/// The monitoring core (sans-I/O).
#[derive(Debug)]
pub struct MonitoringCore {
    me: ProcessId,
    members: Vec<ProcessId>,
    policy: MonitoringPolicy,
    /// suspect → reporting members.
    reporters: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    /// Exclusions already requested (avoid repeats).
    excluded: BTreeSet<ProcessId>,
}

impl MonitoringCore {
    /// Creates the core for `me` monitoring `members`.
    pub fn new(me: ProcessId, members: Vec<ProcessId>, policy: MonitoringPolicy) -> Self {
        MonitoringCore {
            me,
            members,
            policy,
            reporters: BTreeMap::new(),
            excluded: BTreeSet::new(),
        }
    }

    /// Installs a new member set (view change). State about processes no
    /// longer in the view is dropped.
    pub fn set_members(&mut self, members: Vec<ProcessId>) {
        self.reporters.retain(|p, _| members.contains(p));
        for (_, r) in self.reporters.iter_mut() {
            r.retain(|p| members.contains(p));
        }
        self.excluded.retain(|p| members.contains(p));
        self.members = members;
    }

    /// Local failure-detector (long-timeout class) suspicion of `peer`:
    /// record it and gossip to the other members.
    pub fn on_fd_suspect(&mut self, peer: ProcessId) -> Vec<MonOut> {
        if !self.policy.use_fd {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &m in &self.members {
            if m != self.me && m != peer {
                out.push(MonOut::Wire(m, WireMsg::Mon(MonMsg::Report { peer })));
            }
        }
        self.record(self.me, peer, &mut out);
        out
    }

    /// Local failure-detector restoration: withdraw our report.
    pub fn on_fd_restore(&mut self, peer: ProcessId) {
        if let Some(r) = self.reporters.get_mut(&peer) {
            r.remove(&self.me);
        }
    }

    /// Output-triggered suspicion from the reliable channel (§3.3.2).
    pub fn on_stuck(&mut self, peer: ProcessId) -> Vec<MonOut> {
        if !self.policy.use_output_triggered {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.record(self.me, peer, &mut out);
        out
    }

    /// The peer acknowledged again; withdraw the output-triggered report.
    pub fn on_unstuck(&mut self, peer: ProcessId) {
        self.on_fd_restore(peer);
    }

    /// A gossiped report from another member.
    pub fn on_report(&mut self, from: ProcessId, peer: ProcessId) -> Vec<MonOut> {
        let mut out = Vec::new();
        self.record(from, peer, &mut out);
        out
    }

    fn record(&mut self, reporter: ProcessId, peer: ProcessId, out: &mut Vec<MonOut>) {
        if peer == self.me || !self.members.contains(&peer) {
            return;
        }
        let reports = self.reporters.entry(peer).or_default();
        reports.insert(reporter);
        if reports.len() >= self.policy.threshold && self.excluded.insert(peer) {
            out.push(MonOut::Exclude(peer));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn members() -> Vec<ProcessId> {
        (0..4).map(pid).collect()
    }

    #[test]
    fn threshold_one_excludes_on_first_suspicion() {
        let mut m = MonitoringCore::new(pid(0), members(), MonitoringPolicy::default());
        let out = m.on_fd_suspect(pid(3));
        assert!(out.contains(&MonOut::Exclude(pid(3))));
        // Gossip goes to the other members (not self, not the suspect).
        let gossip = out.iter().filter(|o| matches!(o, MonOut::Wire(..))).count();
        assert_eq!(gossip, 2);
        // Never excluded twice.
        assert!(!m.on_fd_suspect(pid(3)).contains(&MonOut::Exclude(pid(3))));
    }

    #[test]
    fn threshold_two_waits_for_a_second_reporter() {
        let policy = MonitoringPolicy {
            threshold: 2,
            ..Default::default()
        };
        let mut m = MonitoringCore::new(pid(0), members(), policy);
        let out = m.on_fd_suspect(pid(3));
        assert!(!out.contains(&MonOut::Exclude(pid(3))));
        let out = m.on_report(pid(1), pid(3));
        assert!(out.contains(&MonOut::Exclude(pid(3))));
    }

    #[test]
    fn restore_withdraws_report() {
        let policy = MonitoringPolicy {
            threshold: 2,
            ..Default::default()
        };
        let mut m = MonitoringCore::new(pid(0), members(), policy);
        let _ = m.on_fd_suspect(pid(3));
        m.on_fd_restore(pid(3));
        // A second reporter alone no longer reaches the threshold.
        let out = m.on_report(pid(1), pid(3));
        assert!(!out.contains(&MonOut::Exclude(pid(3))));
    }

    #[test]
    fn output_triggered_counts_when_enabled() {
        let mut m = MonitoringCore::new(pid(0), members(), MonitoringPolicy::default());
        let out = m.on_stuck(pid(2));
        assert!(out.contains(&MonOut::Exclude(pid(2))));

        let off = MonitoringPolicy {
            use_output_triggered: false,
            ..Default::default()
        };
        let mut m = MonitoringCore::new(pid(0), members(), off);
        assert!(m.on_stuck(pid(2)).is_empty());
    }

    #[test]
    fn fd_reports_ignored_when_disabled() {
        let policy = MonitoringPolicy {
            use_fd: false,
            ..Default::default()
        };
        let mut m = MonitoringCore::new(pid(0), members(), policy);
        assert!(m.on_fd_suspect(pid(1)).is_empty());
    }

    #[test]
    fn self_and_non_members_are_never_excluded() {
        let mut m = MonitoringCore::new(pid(0), members(), MonitoringPolicy::default());
        assert!(m.on_report(pid(1), pid(0)).is_empty());
        assert!(m.on_report(pid(1), pid(9)).is_empty());
    }

    #[test]
    fn view_change_drops_stale_state() {
        let policy = MonitoringPolicy {
            threshold: 2,
            ..Default::default()
        };
        let mut m = MonitoringCore::new(pid(0), members(), policy);
        let _ = m.on_fd_suspect(pid(3));
        m.set_members(vec![pid(0), pid(1), pid(2)]);
        // p3 left; a new report about it is ignored.
        assert!(m.on_report(pid(1), pid(3)).is_empty());
    }
}
