//! Assembling the full new-architecture stack (Fig 9) and a simulation
//! harness for driving groups of them.

use bytes::Bytes;
use gcs_kernel::{PayloadRef, Process, ProcessId, SharedArena, Time, TimeDelta};
use gcs_net::RcConfig;
use gcs_sim::{Metrics, Schedule, ScheduleAction, SimConfig, SimWorld, Trace};

use crate::abcast::BatchPolicy;
use crate::components::{
    names, AbcastComponent, ConsensusComponent, FdComponent, GenericComponent, MembershipComponent,
    MonitoringComponent, RcComponent,
};
use crate::generic::GenericCore;
use crate::membership::MembershipCore;
use crate::monitoring::MonitoringPolicy;
use crate::rbcast::RelayFanout;
use crate::types::{ConflictRelation, Delivery, Ev, MessageClass, View};

/// Configuration of one new-architecture process stack.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Conflict relation used by generic broadcast.
    pub conflict: ConflictRelation,
    /// Reliable-channel configuration (retransmission, output-triggered
    /// suspicion threshold).
    pub rc: RcConfig,
    /// Failure-detector heartbeat period.
    pub heartbeat_interval: TimeDelta,
    /// Small timeout: consensus-class suspicions (order of the paper's
    /// "seconds"; milliseconds at simulation scale).
    pub consensus_timeout: TimeDelta,
    /// Large timeout: monitoring-class suspicions (the paper's "minutes").
    pub monitoring_timeout: TimeDelta,
    /// Exclusion policy of the monitoring component.
    pub monitoring: MonitoringPolicy,
    /// Size of the application state transferred to joiners (models the
    /// paper's state-transfer cost, §4.3).
    pub state_size: usize,
    /// FIFO generic broadcast (paper footnote 9): per-sender delivery order
    /// follows the broadcast order.
    pub fifo_generic: bool,
    /// Failure-detector monitoring mode. `None` derives from the group
    /// size: all-pairs heartbeats for founding groups of at most
    /// [`SCALE_THRESHOLD`] members (keeping small-group runs bit-identical
    /// to the pre-gossip stack), gossip with an auto fanout (≈ log₂ n)
    /// above it.
    pub fd_mode: Option<gcs_fd::FdMode>,
    /// Reliable-broadcast relay fan-out: how many ring successors each
    /// first-copy receiver re-forwards a diffused message to. `None`
    /// derives from the group size: relay-to-all below
    /// [`SCALE_THRESHOLD`], ≈ log₂ n above (bounding diffusion cost at
    /// O(n·k) messages instead of O(n²)).
    pub relay_fanout: Option<RelayFanout>,
    /// Emit consensus-class `Suspect`/`Restore` transitions as trace
    /// outputs (crash-detection latency measurement; off by default so
    /// existing run fingerprints and delivery counts are untouched).
    pub trace_suspicions: bool,
    /// How many abcast consensus instances may run concurrently. Unlike the
    /// scale-derived policies above, the pipeline window is *order-visible*
    /// (it changes which batch each instance agrees on), so `None` resolves
    /// to depth 1 at **every** group size — recorded fingerprints stay
    /// bit-identical unless a run opts in explicitly.
    pub pipeline_depth: Option<usize>,
    /// When abcast proposal batches close (count, bytes, or deadline).
    /// `None` resolves to the eager unbounded default, which proposes
    /// everything pending immediately — the pre-batching behavior.
    pub batch: Option<BatchPolicy>,
}

/// Largest founding-group size that keeps the scale-neutral defaults:
/// all-pairs failure detection and relay-to-all diffusion. Groups larger
/// than this derive gossip monitoring and bounded relay unless the config
/// pins a mode explicitly.
pub const SCALE_THRESHOLD: usize = 16;

/// The auto-derived gossip/relay fanout for a group of `n`: ⌈log₂(n+1)⌉,
/// at least 2.
pub fn auto_fanout(n: usize) -> usize {
    ((usize::BITS - n.leading_zeros()) as usize).clamp(2, n.max(2))
}

impl StackConfig {
    /// The concrete failure-detector mode for a founding group of `n`.
    pub fn resolved_fd_mode(&self, n: usize) -> gcs_fd::FdMode {
        match self.fd_mode {
            Some(mode) => mode,
            None if n <= SCALE_THRESHOLD => gcs_fd::FdMode::AllPairs,
            None => gcs_fd::FdMode::Gossip { fanout: 0 },
        }
    }

    /// The concrete relay fan-out for a founding group of `n`.
    pub fn resolved_relay(&self, n: usize) -> RelayFanout {
        match self.relay_fanout {
            Some(relay) => relay,
            None if n <= SCALE_THRESHOLD => RelayFanout::All,
            None => RelayFanout::Bounded(auto_fanout(n)),
        }
    }

    /// The concrete consensus pipeline depth (always ≥ 1). Depth is never
    /// derived from the group size: deeper windows change the agreed batch
    /// boundaries, so anything but 1 must be an explicit opt-in.
    pub fn resolved_pipeline_depth(&self) -> usize {
        self.pipeline_depth.unwrap_or(1).max(1)
    }

    /// The concrete abcast batch policy (eager and unbounded by default).
    pub fn resolved_batch(&self) -> BatchPolicy {
        self.batch.unwrap_or_default()
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            conflict: ConflictRelation::rbcast_abcast(),
            rc: RcConfig::default(),
            heartbeat_interval: TimeDelta::from_millis(5),
            consensus_timeout: TimeDelta::from_millis(25),
            monitoring_timeout: TimeDelta::from_millis(500),
            monitoring: MonitoringPolicy::default(),
            state_size: 0,
            fifo_generic: false,
            fd_mode: None,
            relay_fanout: None,
            trace_suspicions: false,
            pipeline_depth: None,
            batch: None,
        }
    }
}

/// Builds the full Fig 9 component graph for one process.
///
/// `initial_view` is `Some` for founding members, `None` for processes that
/// will join later via [`GroupSim::join_at`]. `scale_n` is the founding
/// group size the scale-dependent defaults (failure-detection mode, relay
/// fan-out) resolve against — joiners pass it too, so every process of one
/// group runs the same policies.
pub fn build_process(
    id: ProcessId,
    config: &StackConfig,
    initial_view: Option<View>,
    scale_n: usize,
) -> Process<Ev> {
    let fd_peers = initial_view
        .as_ref()
        .map(|v| v.members.clone())
        .unwrap_or_default();
    Process::builder(id)
        .with(RcComponent::new(id, config.rc))
        .with(FdComponent::with_mode(
            id,
            fd_peers.clone(),
            config.heartbeat_interval,
            config.consensus_timeout,
            config.monitoring_timeout,
            config.resolved_fd_mode(scale_n),
            config.trace_suspicions,
        ))
        .with(ConsensusComponent::with_echo_fanout(
            id,
            match config.resolved_relay(scale_n) {
                RelayFanout::All => None,
                RelayFanout::Bounded(k) => Some(k),
            },
        ))
        .with(AbcastComponent::with_policy(
            id,
            initial_view.clone(),
            config.resolved_relay(scale_n),
            config.resolved_pipeline_depth(),
            config.resolved_batch(),
        ))
        .with(GenericComponent::new({
            let core = GenericCore::with_relay(
                id,
                config.conflict.clone(),
                initial_view.clone(),
                config.resolved_relay(scale_n),
            );
            if config.fifo_generic {
                core.with_fifo()
            } else {
                core
            }
        }))
        .with(MembershipComponent::new(MembershipCore::new(
            id,
            initial_view,
            config.state_size,
        )))
        .with(MonitoringComponent::new(id, fd_peers, config.monitoring))
        .build()
}

/// A simulated group running the new architecture — the harness used by the
/// examples, integration tests and benchmarks.
///
/// ```
/// use gcs_core::{GroupSim, StackConfig};
/// use gcs_kernel::{ProcessId, Time};
///
/// let mut group = GroupSim::new(3, StackConfig::default(), 42);
/// group.abcast_at(Time::from_millis(1), ProcessId::new(0), b"hello".to_vec());
/// group.run_until(Time::from_millis(300));
/// let seqs = group.adelivered_payloads();
/// assert_eq!(seqs[0], vec![b"hello".to_vec()]);
/// assert_eq!(seqs[0], seqs[1]);
/// assert_eq!(seqs[0], seqs[2]);
/// ```
pub struct GroupSim {
    world: SimWorld<Ev>,
    /// The zero-copy message plane: payloads are interned here at injection
    /// and every layer below moves [`PayloadRef`] handles; observers resolve
    /// them back to bytes through [`resolve`](Self::resolve).
    arena: SharedArena,
    n_members: usize,
    n_total: usize,
    /// Abcast operations accepted for injection (the backpressure ledger).
    offered: u64,
    /// Optional bound on the injection-time abcast backlog (see
    /// [`queue_depth`](Self::queue_depth)); `None` = unbounded.
    queue_capacity: Option<usize>,
    /// Highest backlog observed at an accepted injection.
    queue_high_water: usize,
}

impl GroupSim {
    /// Creates a group of `n` founding members with the given per-process
    /// configuration and simulation seed.
    pub fn new(n: usize, config: StackConfig, seed: u64) -> Self {
        Self::with_sim(n, 0, config, SimConfig::lan(seed))
    }

    /// Creates a group of `n` founding members plus `joiners` processes that
    /// start outside the group (activate them with
    /// [`join_at`](Self::join_at)).
    pub fn with_joiners(n: usize, joiners: usize, config: StackConfig, seed: u64) -> Self {
        Self::with_sim(n, joiners, config, SimConfig::lan(seed))
    }

    /// Full control over the simulation configuration (link model, seed).
    pub fn with_sim(n: usize, joiners: usize, config: StackConfig, sim: SimConfig) -> Self {
        let members: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        let view = View::initial(members);
        let mut world = SimWorld::new(sim);
        for _ in 0..n {
            let v = view.clone();
            let c = &config;
            world.add_node(|id| build_process(id, c, Some(v), n));
        }
        for _ in 0..joiners {
            let c = &config;
            world.add_node(|id| build_process(id, c, None, n));
        }
        GroupSim {
            world,
            arena: SharedArena::new(),
            n_members: n,
            n_total: n + joiners,
            offered: 0,
            queue_capacity: None,
            queue_high_water: 0,
        }
    }

    // -- backpressure ------------------------------------------------------

    /// Bounds the injection-time abcast backlog: once
    /// [`queue_depth`](Self::queue_depth) reaches `cap`, `try_abcast`-style
    /// facade calls reject instead of queueing. `None` removes the bound.
    pub fn set_queue_capacity(&mut self, cap: Option<usize>) {
        self.queue_capacity = cap;
    }

    /// The configured abcast backlog bound, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Abcast operations accepted for injection so far.
    pub fn abcast_offered(&self) -> u64 {
        self.offered
    }

    /// The abcast backlog as seen from `p`: operations accepted minus trace
    /// outputs observed at `p`. Meaningful for interleaved drivers (run to
    /// `t`, then inject at `t`); a driver that pre-schedules its whole
    /// workload reads the full offered count here. Approximate by design —
    /// occasional non-delivery trace outputs (view installs) are counted as
    /// drained work.
    pub fn queue_depth(&self, p: ProcessId) -> usize {
        self.offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize
    }

    /// The highest [`queue_depth`](Self::queue_depth) observed at the moment
    /// an injection was accepted.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Number of processes (members + joiners).
    pub fn len(&self) -> usize {
        self.n_total
    }

    /// True if the group has no processes.
    pub fn is_empty(&self) -> bool {
        self.n_total == 0
    }

    /// The founding member count.
    pub fn founding_members(&self) -> usize {
        self.n_members
    }

    /// Direct access to the underlying simulation world.
    pub fn world(&self) -> &SimWorld<Ev> {
        &self.world
    }

    /// Mutable access to the underlying simulation world (fault injection).
    pub fn world_mut(&mut self) -> &mut SimWorld<Ev> {
        &mut self.world
    }

    /// The payload arena backing this group's message plane.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Resolves a delivered payload handle to its bytes.
    ///
    /// # Panics
    ///
    /// Panics on a handle not issued by this group's arena.
    pub fn resolve(&self, payload: PayloadRef) -> Bytes {
        self.arena.get(payload)
    }

    // -- workload ----------------------------------------------------------

    /// Schedules an atomic broadcast by `p` at time `t`. The payload is
    /// interned in the group's arena; everything below moves the handle.
    pub fn abcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.abcast_ref_at(t, p, payload);
    }

    /// Schedules an atomic broadcast of an already-interned payload handle
    /// (the zero-copy injection path: workloads build payloads straight in
    /// the arena's scratch pool and hand over the handle).
    pub fn abcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.offered += 1;
        let backlog = self
            .offered
            .saturating_sub(self.world.trace().deliveries_of(p)) as usize;
        if backlog > self.queue_high_water {
            self.queue_high_water = backlog;
        }
        self.world
            .inject_at(t, p, names::ABCAST, Ev::Abcast(payload));
    }

    /// Schedules a generic broadcast of `class` by `p` at time `t`.
    pub fn gbcast_at(
        &mut self,
        t: Time,
        p: ProcessId,
        class: MessageClass,
        payload: impl Into<Bytes>,
    ) {
        let payload = self.arena.intern(payload.into());
        self.gbcast_ref_at(t, p, class, payload);
    }

    /// Schedules a generic broadcast of an already-interned payload handle.
    pub fn gbcast_ref_at(
        &mut self,
        t: Time,
        p: ProcessId,
        class: MessageClass,
        payload: PayloadRef,
    ) {
        self.world
            .inject_at(t, p, names::GENERIC, Ev::Gbcast(class, payload));
    }

    /// Schedules a reliable broadcast (through generic broadcast, class
    /// [`MessageClass::RBCAST`]) by `p` at time `t`.
    pub fn rbcast_at(&mut self, t: Time, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = self.arena.intern(payload.into());
        self.rbcast_ref_at(t, p, payload);
    }

    /// Schedules a reliable broadcast of an already-interned payload handle.
    pub fn rbcast_ref_at(&mut self, t: Time, p: ProcessId, payload: PayloadRef) {
        self.world
            .inject_at(t, p, names::GENERIC, Ev::Rbcast(payload));
    }

    /// Schedules non-member `joiner` to request membership via `contact`.
    pub fn join_at(&mut self, t: Time, joiner: ProcessId, contact: ProcessId) {
        self.world
            .inject_at(t, joiner, names::MEMBERSHIP, Ev::JoinVia(contact));
    }

    /// Schedules member `by` to ask for the removal of `target`.
    pub fn remove_at(&mut self, t: Time, by: ProcessId, target: ProcessId) {
        self.world
            .inject_at(t, by, names::MEMBERSHIP, Ev::RemoveMember(target));
    }

    /// Crashes `p` at `t` (crash-stop).
    pub fn crash_at(&mut self, t: Time, p: ProcessId) {
        self.world.crash_at(t, p);
    }

    /// Applies a scripted [`Schedule`]: simulator-level steps (crashes,
    /// partitions, link changes, spikes, bursts) go to the world, and the
    /// membership steps ([`ScheduleAction::Join`] /
    /// [`ScheduleAction::Remove`]) are routed through this group's
    /// membership component — the join-under-load path of the scenario
    /// engine.
    pub fn apply_schedule(&mut self, schedule: &Schedule) {
        for (t, action) in self.world.apply_schedule(schedule) {
            match action {
                ScheduleAction::Join { joiner, contact } => self.join_at(t, joiner, contact),
                ScheduleAction::Remove { by, target } => self.remove_at(t, by, target),
                _ => unreachable!("apply_schedule only returns membership actions"),
            }
        }
    }

    // -- execution ---------------------------------------------------------

    /// Runs the simulation up to virtual time `t`.
    pub fn run_until(&mut self, t: Time) {
        self.world.run_until(t);
    }

    /// Runs until the event queue drains or virtual time would exceed
    /// `limit`; returns `true` only if the system actually quiesced (no
    /// event remained scheduled at or before `limit`).
    ///
    /// A group with at least one live member **never** quiesces: heartbeat
    /// timers re-arm forever, so the return value is `false` and the call is
    /// equivalent to [`run_until`](Self::run_until)`(limit)`. `true` is only
    /// reachable once every process has crashed or halted and the already
    /// scheduled events have drained — callers asserting on the flag should
    /// assert the outcome they expect, not ignore it.
    pub fn run_to_quiescence(&mut self, limit: Time) -> bool {
        self.world.run_to_quiescence(limit)
    }

    // -- observation -------------------------------------------------------

    /// The raw delivery trace.
    pub fn trace(&self) -> &Trace<Ev> {
        self.world.trace()
    }

    /// Simulation metrics (message counts per protocol).
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// Per-process sequences of all payload deliveries (any kind), in
    /// delivery order.
    pub fn delivered(&self) -> Vec<Vec<Delivery>> {
        self.world.trace().per_proc(self.n_total, |e| match e {
            Ev::Deliver(d) => Some(d.clone()),
            _ => None,
        })
    }

    /// Per-process sequences of atomically delivered payloads (resolved
    /// through the arena).
    pub fn adelivered_payloads(&self) -> Vec<Vec<Vec<u8>>> {
        self.world.trace().per_proc(self.n_total, |e| match e {
            Ev::Deliver(d) if d.kind == crate::types::DeliveryKind::Atomic => {
                Some(self.arena.get(d.payload).to_vec())
            }
            _ => None,
        })
    }

    /// Per-process sequences of generically delivered message ids.
    pub fn gdelivered_ids(&self) -> Vec<Vec<crate::types::MsgId>> {
        self.world.trace().per_proc(self.n_total, |e| match e {
            Ev::Deliver(d) if d.kind != crate::types::DeliveryKind::Atomic => Some(d.id),
            _ => None,
        })
    }

    /// Per-process sequences of installed views.
    pub fn views(&self) -> Vec<Vec<View>> {
        self.world.trace().per_proc(self.n_total, |e| match e {
            Ev::ViewInstalled(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// Liveness flags per process.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.world.alive_flags()
    }

    /// Consensus-class suspicion transitions recorded in the trace, as
    /// `(time, observer, suspect)` — requires
    /// [`StackConfig::trace_suspicions`] and a recording trace mode. The raw
    /// material for crash-detection-latency measurements: a crash at `t` is
    /// detected once every correct process has an entry for the crashed
    /// peer at some `t' > t`.
    pub fn suspicion_trace(&self) -> Vec<(Time, ProcessId, ProcessId)> {
        self.world
            .trace()
            .project(|e| match e {
                Ev::Suspect(class, p) if *class == gcs_fd::MonitorClass::CONSENSUS => Some(*p),
                _ => None,
            })
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::{check_no_duplicates, check_prefix_consistency, check_total_order};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_abcast_reaches_all_members_in_order() {
        let mut g = GroupSim::new(3, StackConfig::default(), 1);
        g.abcast_at(Time::from_millis(1), p(0), b"a".to_vec());
        g.run_until(Time::from_millis(500));
        let seqs = g.adelivered_payloads();
        assert_eq!(seqs, vec![vec![b"a".to_vec()]; 3]);
    }

    #[test]
    fn concurrent_abcasts_are_totally_ordered() {
        let mut g = GroupSim::new(5, StackConfig::default(), 2);
        for i in 0..20u32 {
            g.abcast_at(
                Time::from_micros(500 + 137 * i as u64),
                p(i % 5),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));
        let seqs = g.adelivered_payloads();
        for s in &seqs {
            assert_eq!(s.len(), 20, "all messages delivered everywhere");
        }
        check_prefix_consistency(&seqs).expect("prefix-consistent total order");
        check_no_duplicates(&seqs).expect("no duplicates");
    }

    #[test]
    fn abcast_survives_minority_crash_without_view_change() {
        // The architectural headline (§3.1.1): a crash does NOT block
        // atomic broadcast and needs no membership change.
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_secs(3600); // no exclusions
        let mut g = GroupSim::new(3, cfg, 3);
        g.crash_at(Time::from_millis(10), p(0));
        for i in 0..5u64 {
            g.abcast_at(Time::from_millis(20 + i), p(1), vec![i as u8]);
        }
        g.run_until(Time::from_secs(3));
        let seqs = g.adelivered_payloads();
        assert_eq!(seqs[1].len(), 5, "p1 delivers despite the crash");
        assert_eq!(seqs[1], seqs[2]);
        // No view change happened (no membership involvement).
        assert!(g.views().iter().all(|v| v.is_empty()));
    }

    #[test]
    fn gbcast_non_conflicting_uses_fast_path_only() {
        let mut cfg = StackConfig::default();
        cfg.conflict = ConflictRelation::none(4);
        let mut g = GroupSim::new(4, cfg, 4);
        for i in 0..10u32 {
            g.gbcast_at(
                Time::from_millis(1 + i as u64),
                p(i % 4),
                MessageClass(0),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(2));
        let ids = g.gdelivered_ids();
        for s in &ids {
            assert_eq!(s.len(), 10);
        }
        // Thrifty: no consensus traffic at all.
        assert_eq!(g.metrics().sent_matching(|k| k.starts_with("ct/")), 0);
    }

    #[test]
    fn gbcast_conflicting_pairs_are_ordered_consistently() {
        let mut cfg = StackConfig::default();
        cfg.conflict = ConflictRelation::all(4);
        let mut g = GroupSim::new(4, cfg, 5);
        for i in 0..6u32 {
            g.gbcast_at(
                Time::from_millis(1),
                p(i % 4),
                MessageClass(0),
                vec![i as u8],
            );
        }
        g.run_until(Time::from_secs(3));
        let ids = g.gdelivered_ids();
        for s in &ids {
            assert_eq!(s.len(), 6, "everything delivered: {ids:?}");
        }
        check_total_order(&ids).expect("conflicting messages consistently ordered");
        // Consensus was used (escalation happened).
        assert!(g.metrics().sent_matching(|k| k.starts_with("ct/")) > 0);
    }

    #[test]
    fn join_installs_view_everywhere_and_joiner_participates() {
        let mut g = GroupSim::with_joiners(3, 1, StackConfig::default(), 6);
        g.join_at(Time::from_millis(5), p(3), p(0));
        g.run_until(Time::from_millis(500));
        // All four processes end in view {p0..p3}.
        let views = g.views();
        for (i, vs) in views.iter().enumerate() {
            let last = vs.last().unwrap_or_else(|| panic!("p{i} saw no view"));
            assert_eq!(last.members.len(), 4, "p{i} final view");
        }
        // The joiner can now abcast and everyone delivers.
        g.abcast_at(Time::from_millis(600), p(3), b"from joiner".to_vec());
        g.run_until(Time::from_millis(1200));
        let seqs = g.adelivered_payloads();
        for i in 0..4 {
            assert_eq!(seqs[i].last().unwrap(), &b"from joiner".to_vec(), "p{i}");
        }
    }

    #[test]
    fn monitoring_excludes_crashed_member() {
        let mut cfg = StackConfig::default();
        cfg.monitoring_timeout = TimeDelta::from_millis(200);
        let mut g = GroupSim::new(3, cfg, 7);
        g.crash_at(Time::from_millis(50), p(2));
        g.run_until(Time::from_secs(2));
        let views = g.views();
        for i in 0..2 {
            let last = views[i].last().expect("view change happened");
            assert!(!last.contains(p(2)), "p{i} excluded the crashed member");
            assert_eq!(last.members.len(), 2);
        }
    }

    /// The reliable channel's ack piggybacking (with delayed standalone
    /// acks and batched retransmissions) must cut the steady-state packet
    /// count of the full stack by at least 40% — heartbeats excluded, since
    /// they never carried acks in either scheme.
    #[test]
    fn ack_piggybacking_cuts_steady_state_packets() {
        let run = |piggyback: bool| -> u64 {
            let mut cfg = StackConfig::default();
            cfg.monitoring_timeout = TimeDelta::from_secs(3600);
            cfg.rc.piggyback_acks = piggyback;
            let mut g = GroupSim::new(5, cfg, 1);
            for i in 0..20u32 {
                g.abcast_at(Time::from_millis(1 + i as u64 * 2), p(i % 5), vec![i as u8]);
            }
            g.run_until(Time::from_millis(300));
            let seqs = g.adelivered_payloads();
            assert_eq!(seqs[0].len(), 20, "workload completes");
            g.metrics().sent_matching(|k| k != "fd/heartbeat")
        };
        let classic = run(false);
        let piggybacked = run(true);
        assert!(
            10 * piggybacked <= 6 * classic,
            "expected ≥40% packet reduction: {piggybacked} vs {classic}"
        );
    }

    #[test]
    fn schedule_driven_join_and_remove() {
        // The schedule expresses what join_at/remove_at/crash_at used to:
        // p3 joins via p1 and p2 is removed, all mid-stream.
        let mut g = GroupSim::with_joiners(3, 1, StackConfig::default(), 13);
        let schedule = Schedule::new()
            .join(Time::from_millis(20), p(3), p(1))
            .remove(Time::from_millis(200), p(0), p(2));
        g.apply_schedule(&schedule);
        g.run_until(Time::from_secs(2));
        for i in [0u32, 1, 3] {
            let last = g.views()[i as usize]
                .last()
                .unwrap_or_else(|| panic!("p{i} saw a view"))
                .clone();
            assert!(last.contains(p(3)), "p{i}: joiner in final view");
            assert!(!last.contains(p(2)), "p{i}: removed member gone");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut g = GroupSim::new(3, StackConfig::default(), seed);
            for i in 0..5u64 {
                g.abcast_at(Time::from_millis(1 + i), p((i % 3) as u32), vec![i as u8]);
            }
            g.run_until(Time::from_secs(1));
            (g.adelivered_payloads(), g.metrics().total_sent())
        };
        assert_eq!(run(11), run(11));
    }
}
