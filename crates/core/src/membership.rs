//! Group membership implemented **on top of** atomic broadcast (§3.1.1) —
//! the inversion that defines the new architecture.
//!
//! `join` and `remove` are ordinary atomically broadcast control messages;
//! because the single total order covers both view changes and application
//! messages, view agreement and *same view delivery* (§4.4) come for free —
//! there is no separate view-agreement protocol and **no send blocking**
//! during a view change.
//!
//! Joins: a non-member sends a `JoinRequest` to any member (the sponsor);
//! the sponsor a-broadcasts `Join(p)`; when that control message is
//! a-delivered, every member installs the successor view and the sponsor
//! assembles a state-transfer snapshot for the joiner.

use std::collections::BTreeSet;

use bytes::Bytes;
use gcs_kernel::ProcessId;

use crate::types::{Body, MbMsg, Message, SnapshotData, View, WireMsg};

/// An instruction produced by the membership core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MbOut {
    /// Atomically broadcast a control body (`join`/`remove` of Fig 9).
    Abcast(Body),
    /// Send a wire message (join request or snapshot).
    Wire(ProcessId, WireMsg),
    /// A new view was installed; every component must be told (`new_view`).
    ViewChanged(View),
    /// Begin snapshot assembly for a joiner this process sponsors.
    AssembleSnapshot {
        /// The joiner.
        joiner: ProcessId,
        /// Partially filled snapshot (view and application state).
        snap: Box<SnapshotData>,
    },
    /// This process was removed from the group.
    Excluded,
    /// Reliable-channel state for `peer` can be discarded (§3.3.2).
    Forget(ProcessId),
}

/// The membership core (sans-I/O).
#[derive(Debug)]
pub struct MembershipCore {
    me: ProcessId,
    view: View,
    member: bool,
    /// Joiners whose `Join` this process has a-broadcast and not yet served.
    sponsoring: BTreeSet<ProcessId>,
    /// Size of the dummy application state included in snapshots (models
    /// the paper's state-transfer cost, §4.3).
    state_size: usize,
}

impl MembershipCore {
    /// Creates the core; founding members pass the initial view.
    pub fn new(me: ProcessId, initial_view: Option<View>, state_size: usize) -> Self {
        let (view, member) = match initial_view {
            Some(v) => {
                let m = v.contains(me);
                (v, m)
            }
            None => (
                View {
                    id: 0,
                    members: Vec::new(),
                },
                false,
            ),
        };
        MembershipCore {
            me,
            view,
            member,
            sponsoring: BTreeSet::new(),
            state_size,
        }
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether this process currently belongs to the group.
    pub fn is_member(&self) -> bool {
        self.member
    }

    /// (Non-member) requests membership through `contact`.
    pub fn join_via(&mut self, contact: ProcessId) -> Vec<MbOut> {
        if self.member {
            return Vec::new();
        }
        vec![MbOut::Wire(contact, WireMsg::Mb(MbMsg::JoinRequest))]
    }

    /// (Member) asks the group to remove `p` — called by the monitoring
    /// component (`remove` in Fig 9) or by the application (voluntary
    /// leave).
    pub fn remove(&mut self, p: ProcessId) -> Vec<MbOut> {
        if !self.member || !self.view.contains(p) {
            return Vec::new();
        }
        vec![MbOut::Abcast(Body::Remove(p))]
    }

    /// Handles a join request from a prospective member.
    pub fn on_join_request(&mut self, from: ProcessId) -> Vec<MbOut> {
        if !self.member || self.view.contains(from) || !self.sponsoring.insert(from) {
            return Vec::new();
        }
        vec![MbOut::Abcast(Body::Join(from))]
    }

    /// Handles an a-delivered membership control message.
    pub fn on_ctrl(&mut self, m: &Message) -> Vec<MbOut> {
        let mut out = Vec::new();
        match &m.body {
            Body::Join(p) => {
                if self.view.contains(*p) {
                    self.sponsoring.remove(p);
                    return out; // duplicate join
                }
                self.view = self.view.with_join(*p);
                out.push(MbOut::ViewChanged(self.view.clone()));
                // The sponsor (sender of the ordered Join) serves the
                // snapshot; every member agrees on who that is.
                if m.id.sender == self.me && self.member {
                    self.sponsoring.remove(p);
                    out.push(MbOut::AssembleSnapshot {
                        joiner: *p,
                        snap: Box::new(SnapshotData {
                            view: self.view.clone(),
                            next_instance: 0,
                            adelivered: Vec::new(),
                            gdelivered: Vec::new(),
                            gb_epoch: 0,
                            app_state: Bytes::from(vec![0u8; self.state_size]),
                        }),
                    });
                }
            }
            Body::Remove(p) => {
                if !self.view.contains(*p) {
                    return out; // duplicate remove
                }
                self.view = self.view.with_remove(*p);
                if *p == self.me {
                    self.member = false;
                    out.push(MbOut::Excluded);
                }
                out.push(MbOut::ViewChanged(self.view.clone()));
                out.push(MbOut::Forget(*p));
            }
            Body::App(_) | Body::GbEnd(_) => {}
        }
        out
    }

    /// (Joiner) installs the received snapshot and becomes a member.
    pub fn on_snapshot(&mut self, snap: &SnapshotData) -> Vec<MbOut> {
        if self.member {
            return Vec::new();
        }
        self.view = snap.view.clone();
        self.member = true;
        vec![MbOut::ViewChanged(self.view.clone())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageClass, MsgId};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn ctrl(sender: u32, body: Body) -> Message {
        Message {
            id: MsgId {
                sender: pid(sender),
                seq: 0,
            },
            class: MessageClass::ABCAST,
            body,
        }
    }

    fn member(i: u32) -> MembershipCore {
        MembershipCore::new(pid(i), Some(View::initial(vec![pid(0), pid(1), pid(2)])), 0)
    }

    #[test]
    fn join_request_is_abcast_once() {
        let mut m = member(0);
        let out = m.on_join_request(pid(3));
        assert_eq!(out, vec![MbOut::Abcast(Body::Join(pid(3)))]);
        assert!(m.on_join_request(pid(3)).is_empty(), "already sponsoring");
        assert!(m.on_join_request(pid(1)).is_empty(), "already a member");
    }

    #[test]
    fn sponsor_assembles_snapshot_on_join_delivery() {
        let mut m = member(0);
        let _ = m.on_join_request(pid(3));
        let out = m.on_ctrl(&ctrl(0, Body::Join(pid(3))));
        assert!(matches!(out[0], MbOut::ViewChanged(ref v) if v.id == 1 && v.contains(pid(3))));
        assert!(out
            .iter()
            .any(|o| matches!(o, MbOut::AssembleSnapshot { joiner, .. } if *joiner == pid(3))));
        // Non-sponsors only install the view.
        let mut m1 = member(1);
        let out = m1.on_ctrl(&ctrl(0, Body::Join(pid(3))));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_join_is_ignored() {
        let mut m = member(1);
        let _ = m.on_ctrl(&ctrl(0, Body::Join(pid(3))));
        assert!(m.on_ctrl(&ctrl(2, Body::Join(pid(3)))).is_empty());
        assert_eq!(m.view().id, 1);
    }

    #[test]
    fn remove_installs_view_and_forgets_peer() {
        let mut m = member(0);
        let out = m.on_ctrl(&ctrl(1, Body::Remove(pid(2))));
        assert!(out.contains(&MbOut::Forget(pid(2))));
        assert!(!m.view().contains(pid(2)));
        assert!(m.is_member());
        // Duplicate remove is a no-op.
        assert!(m.on_ctrl(&ctrl(1, Body::Remove(pid(2)))).is_empty());
    }

    #[test]
    fn removed_process_learns_its_exclusion() {
        let mut m = member(2);
        let out = m.on_ctrl(&ctrl(1, Body::Remove(pid(2))));
        assert!(out.contains(&MbOut::Excluded));
        assert!(!m.is_member());
        // A non-member cannot remove others.
        assert!(m.remove(pid(0)).is_empty());
    }

    #[test]
    fn joiner_installs_snapshot() {
        let mut j = MembershipCore::new(pid(3), None, 0);
        assert!(!j.is_member());
        let out = j.join_via(pid(0));
        assert!(matches!(out[0], MbOut::Wire(p, WireMsg::Mb(MbMsg::JoinRequest)) if p == pid(0)));
        let snap = SnapshotData {
            view: View {
                id: 1,
                members: vec![pid(0), pid(1), pid(2), pid(3)],
            },
            next_instance: 4,
            adelivered: vec![],
            gdelivered: vec![],
            gb_epoch: 2,
            app_state: Bytes::new(),
        };
        let out = j.on_snapshot(&snap);
        assert!(j.is_member());
        assert!(matches!(out[0], MbOut::ViewChanged(ref v) if v.id == 1));
    }

    #[test]
    fn snapshot_state_size_is_configured() {
        let mut m = MembershipCore::new(
            pid(0),
            Some(View::initial(vec![pid(0), pid(1), pid(2)])),
            1024,
        );
        let _ = m.on_join_request(pid(3));
        let out = m.on_ctrl(&ctrl(0, Body::Join(pid(3))));
        let snap = out
            .iter()
            .find_map(|o| match o {
                MbOut::AssembleSnapshot { snap, .. } => Some(snap),
                _ => None,
            })
            .expect("sponsor assembles");
        assert_eq!(snap.app_state.len(), 1024);
    }
}
