//! Shared vocabulary of the AB-GB architecture: message identities, views,
//! conflict relations, and the event/wire catalogs of Fig 9.

use bytes::Bytes;
use gcs_consensus::{CtMsg, InstanceId};
use gcs_kernel::{Event, PayloadRef, ProcessId, Time};
use gcs_net::Packet;
use std::fmt;
use std::sync::Arc;

/// Globally unique message identity: `(sender, per-sender sequence)`.
///
/// The total order on `MsgId` (sender first, then sequence) is used as the
/// deterministic tie-break whenever a batch of messages must be delivered in
/// an agreed order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// Originating process.
    pub sender: ProcessId,
    /// Sequence number local to the sender's broadcast module.
    pub seq: u64,
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sender, self.seq)
    }
}

/// Conflict class of a message (the "message semantics" of generic
/// broadcast, paper §3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageClass(pub u16);

impl MessageClass {
    /// Reliable-broadcast class in the paper's §3.3 conflict relation:
    /// conflicts with [`ABCAST`](Self::ABCAST) but not with itself.
    pub const RBCAST: MessageClass = MessageClass(0);
    /// Atomic-broadcast class: conflicts with everything.
    pub const ABCAST: MessageClass = MessageClass(1);
    /// First class id free for applications.
    pub const USER_BASE: u16 = 8;
}

/// A symmetric conflict relation over [`MessageClass`]es (paper §3.2.1).
///
/// `conflicts(a, b)` must equal `conflicts(b, a)`; the constructors enforce
/// symmetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictRelation {
    /// `pairs[a][b]` for registered classes; indexed by class id.
    size: usize,
    matrix: Vec<bool>,
}

impl ConflictRelation {
    /// A relation over classes `0..size` where nothing conflicts.
    pub fn none(size: u16) -> Self {
        let size = size as usize;
        ConflictRelation {
            size,
            matrix: vec![false; size * size],
        }
    }

    /// A relation over classes `0..size` where everything conflicts
    /// (generic broadcast degenerates to atomic broadcast).
    pub fn all(size: u16) -> Self {
        let size = size as usize;
        ConflictRelation {
            size,
            matrix: vec![true; size * size],
        }
    }

    /// The paper's §3.3 relation between [`MessageClass::RBCAST`] and
    /// [`MessageClass::ABCAST`]: rbcast–rbcast does not conflict, all other
    /// pairs do.
    pub fn rbcast_abcast() -> Self {
        let mut r = Self::none(2);
        r.set_conflict(MessageClass::ABCAST, MessageClass::ABCAST);
        r.set_conflict(MessageClass::RBCAST, MessageClass::ABCAST);
        r
    }

    /// Marks `a` and `b` (and symmetrically `b` and `a`) as conflicting.
    ///
    /// # Panics
    ///
    /// Panics if either class is out of range.
    pub fn set_conflict(&mut self, a: MessageClass, b: MessageClass) {
        let (a, b) = (a.0 as usize, b.0 as usize);
        assert!(a < self.size && b < self.size, "class out of range");
        self.matrix[a * self.size + b] = true;
        self.matrix[b * self.size + a] = true;
    }

    /// Whether messages of classes `a` and `b` must be mutually ordered.
    ///
    /// Classes outside the registered range conservatively conflict.
    pub fn conflicts(&self, a: MessageClass, b: MessageClass) -> bool {
        let (a, b) = (a.0 as usize, b.0 as usize);
        if a >= self.size || b >= self.size {
            return true;
        }
        self.matrix[a * self.size + b]
    }
}

/// A group view: a totally ordered **list** of members (paper footnote 10 —
/// the head of the list is the primary in passive replication).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// The member list; order is agreed (head = primary).
    pub members: Vec<ProcessId>,
}

impl View {
    /// The initial view (id 0) over the given members.
    pub fn initial(members: Vec<ProcessId>) -> Self {
        View { id: 0, members }
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(&p)
    }

    /// The primary (head of the list), if the view is non-empty.
    pub fn primary(&self) -> Option<ProcessId> {
        self.members.first().copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The successor view after adding `p` (appended at the tail).
    pub fn with_join(&self, p: ProcessId) -> View {
        let mut members = self.members.clone();
        if !members.contains(&p) {
            members.push(p);
        }
        View {
            id: self.id + 1,
            members,
        }
    }

    /// The successor view after removing `p`.
    pub fn with_remove(&self, p: ProcessId) -> View {
        View {
            id: self.id + 1,
            members: self.members.iter().copied().filter(|&m| m != p).collect(),
        }
    }

    /// The successor view that rotates `old_primary` to the tail
    /// (primary-change, paper Fig 8 footnote 10).
    pub fn with_rotation(&self, old_primary: ProcessId) -> View {
        let mut members: Vec<ProcessId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != old_primary)
            .collect();
        if self.members.contains(&old_primary) {
            members.push(old_primary);
        }
        View {
            id: self.id + 1,
            members,
        }
    }
}

/// The body of a broadcast message.
///
/// Application payloads are **arena handles** ([`PayloadRef`]), not owned
/// byte containers: the bytes live once in the simulation's
/// [`SharedArena`](gcs_kernel::SharedArena) and every layer the message
/// crosses (batch assembly, consensus proposal, decision fan-out, wire
/// packet, delivery) moves a 12-byte `Copy` handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Body {
    /// Opaque application payload (interned in the simulation's arena).
    App(PayloadRef),
    /// Membership control: add `p` to the view.
    Join(ProcessId),
    /// Membership control: remove `p` from the view.
    Remove(ProcessId),
    /// Generic-broadcast epoch closure (internal; ordered through abcast).
    /// Carries full messages so closure deliveries never stall on missing
    /// payloads. The payload lives behind an `Arc`: epoch closures are
    /// diffused to every member, and the shared pointer keeps that fan-out
    /// from deep-copying the message sets per destination.
    GbEnd(Arc<GbEndData>),
}

/// The payload of a [`Body::GbEnd`] epoch-closure message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GbEndData {
    /// The epoch being closed.
    pub epoch: u64,
    /// Messages the sender had acked in this epoch.
    pub acked: Vec<Message>,
    /// Other undelivered messages the sender knew of.
    pub pending: Vec<Message>,
}

impl Body {
    /// Approximate wire size contribution.
    pub fn size_hint(&self) -> usize {
        match self {
            Body::App(b) => b.len(),
            Body::Join(_) | Body::Remove(_) => 8,
            Body::GbEnd(end) => {
                16 + end
                    .acked
                    .iter()
                    .chain(&end.pending)
                    .map(|m| 32 + m.body.size_hint())
                    .sum::<usize>()
            }
        }
    }
}

/// A full broadcast message (identity, class, body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique identity.
    pub id: MsgId,
    /// Conflict class.
    pub class: MessageClass,
    /// Content.
    pub body: Body,
}

/// How a message reached the application (which primitive delivered it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryKind {
    /// Delivered by atomic broadcast (`adeliver`).
    Atomic,
    /// Delivered by generic broadcast (`gdeliver`) on the conflict-free fast
    /// path.
    GenericFast,
    /// Delivered by generic broadcast at an epoch closure (conflict forced
    /// an atomic-broadcast escalation).
    GenericOrdered,
}

/// An application-visible delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Which primitive delivered the message.
    pub kind: DeliveryKind,
    /// Message identity.
    pub id: MsgId,
    /// Conflict class.
    pub class: MessageClass,
    /// Application payload handle; resolve it against the simulation's
    /// arena (e.g. [`GroupSim::resolve`](crate::GroupSim::resolve)).
    pub payload: PayloadRef,
    /// The view id current at delivery (same view delivery, §4.4).
    pub view: u64,
}

// ---------------------------------------------------------------------------
// Wire messages (what travels between processes)
// ---------------------------------------------------------------------------

/// Messages of the atomic-broadcast component (payload dissemination).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbMsg {
    /// Diffusion (reliable broadcast) of a message to be ordered.
    Data(Message),
}

/// Messages of the generic-broadcast component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GbMsg {
    /// Diffusion of a generic-broadcast message.
    Data(Message),
    /// Conflict-free acknowledgement of `id` within `epoch`.
    Ack {
        /// Epoch the ack belongs to.
        epoch: u64,
        /// The acknowledged message.
        id: MsgId,
    },
}

/// Messages of the membership component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MbMsg {
    /// A non-member asks `sponsor` to propose it for membership.
    JoinRequest,
    /// State transfer to a joiner: everything needed to participate.
    Snapshot(Box<SnapshotData>),
}

/// State transferred to a joining process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotData {
    /// The view in which the joiner is first a member.
    pub view: View,
    /// The first consensus instance the joiner participates in.
    pub next_instance: InstanceId,
    /// Ids already atomically delivered (so the joiner does not redeliver).
    pub adelivered: Vec<MsgId>,
    /// Ids already generically delivered.
    pub gdelivered: Vec<MsgId>,
    /// Current generic-broadcast epoch.
    pub gb_epoch: u64,
    /// Opaque application state (for the replication layer), with its size
    /// modelling the paper's "costly state transfer" (§4.3).
    pub app_state: Bytes,
}

/// Messages of the monitoring component (suspicion gossip).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonMsg {
    /// The sender's long-timeout failure detector suspects `peer`.
    Report {
        /// The suspected process.
        peer: ProcessId,
    },
}

/// Everything that travels on the reliable channel between two processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// Consensus traffic, tagged by instance.
    Ct {
        /// The consensus instance.
        instance: InstanceId,
        /// The Chandra-Toueg message.
        msg: CtMsg<Batch>,
    },
    /// Atomic-broadcast traffic.
    Ab(AbMsg),
    /// Generic-broadcast traffic.
    Gb(GbMsg),
    /// Membership traffic.
    Mb(MbMsg),
    /// Monitoring traffic.
    Mon(MonMsg),
}

impl WireMsg {
    /// Metric label of this wire message.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Ct { msg, .. } => msg.kind(),
            WireMsg::Ab(AbMsg::Data(_)) => "ab/data",
            WireMsg::Gb(GbMsg::Data(_)) => "gb/data",
            WireMsg::Gb(GbMsg::Ack { .. }) => "gb/ack",
            WireMsg::Mb(MbMsg::JoinRequest) => "mb/join-request",
            WireMsg::Mb(MbMsg::Snapshot(_)) => "mb/snapshot",
            WireMsg::Mon(_) => "mon/report",
        }
    }

    /// Approximate wire size.
    pub fn size_hint(&self) -> usize {
        match self {
            WireMsg::Ct { msg, .. } => {
                let batch_size =
                    |b: &Batch| b.iter().map(|m| 32 + m.body.size_hint()).sum::<usize>();
                24 + match msg {
                    CtMsg::Estimate { est, .. } | CtMsg::Propose { est, .. } => batch_size(est),
                    CtMsg::Decide { est } => batch_size(est),
                    _ => 0,
                }
            }
            WireMsg::Ab(AbMsg::Data(m)) | WireMsg::Gb(GbMsg::Data(m)) => 32 + m.body.size_hint(),
            WireMsg::Gb(GbMsg::Ack { .. }) => 28,
            WireMsg::Mb(MbMsg::JoinRequest) => 16,
            WireMsg::Mb(MbMsg::Snapshot(s)) => {
                64 + 12 * (s.adelivered.len() + s.gdelivered.len()) + s.app_state.len()
            }
            WireMsg::Mon(_) => 20,
        }
    }
}

/// A consensus value: the batch of messages decided by one instance, sorted
/// by [`MsgId`].
///
/// Batches carry full messages (not just ids): the Chandra-Toueg reduction
/// is only live if a decided message's payload is available wherever the
/// decision is, even when the original sender crashed mid-diffusion.
///
/// Shared (`Arc`) because consensus broadcasts each estimate/proposal/
/// decision to every participant: with a shared slice the per-destination
/// clone is a reference-count bump instead of a deep copy of the batch.
pub type Batch = Arc<[Message]>;

// ---------------------------------------------------------------------------
// The process-local event catalog (the arrows of Fig 9)
// ---------------------------------------------------------------------------

/// Every event routed inside a process of the new architecture or across
/// the network — the concrete catalog of Fig 9's interfaces.
#[derive(Clone, Debug)]
pub enum Ev {
    // -- network-level (ctx.send / on_message) --
    /// Reliable-channel packet (`send`/`receive` of Fig 9).
    Packet(Packet<WireMsg>),
    /// Failure-detector heartbeat on the *unreliable* transport
    /// (`u-send`/`u-receive`).
    Heartbeat,
    /// Gossip-mode failure-detector heartbeat: carries the sender's alive
    /// digest (last-heard times of the ring segment it is probing). Shared
    /// across the per-tick fan-out — cloning is a reference-count bump.
    FdGossip(Arc<[(ProcessId, Time)]>),

    // -- application operations (injected) --
    /// `abcast` (Fig 9): atomically broadcast an interned payload.
    Abcast(PayloadRef),
    /// `rbcast` through generic broadcast: class [`MessageClass::RBCAST`].
    Rbcast(PayloadRef),
    /// Generic broadcast with an application conflict class.
    Gbcast(MessageClass, PayloadRef),
    /// `join`: ask the membership to add this (non-member) process, via the
    /// given contact member.
    JoinVia(ProcessId),
    /// `remove`: ask the membership to remove a member.
    RemoveMember(ProcessId),

    // -- inter-component (emitted) --
    /// Any component → reliable channel: send `WireMsg` to a peer.
    RcSend(ProcessId, WireMsg),
    /// Reliable channel → protocol component: `WireMsg` from a peer.
    Net(ProcessId, WireMsg),
    /// Reliable channel → monitoring: output-triggered suspicion (§3.3.2).
    RcStuck(ProcessId, Time),
    /// Reliable channel → monitoring: the peer acked again.
    RcUnstuck(ProcessId),
    /// Failure detector → consensus/monitoring: `suspect` (Fig 9).
    Suspect(gcs_fd::MonitorClass, ProcessId),
    /// Failure detector → consensus/monitoring: suspicion withdrawn.
    Restore(gcs_fd::MonitorClass, ProcessId),
    /// Atomic broadcast → consensus: `propose`/`run` for an instance. The
    /// participant set is shared (cached per view by the abcast core).
    Propose(InstanceId, Batch, Arc<[ProcessId]>),
    /// Consensus → atomic broadcast: `decide` for an instance.
    Decide(InstanceId, Batch),
    /// Consensus → atomic broadcast: a message for an instance that does not
    /// exist yet — start it (with an empty proposal if need be).
    NeedInstance(InstanceId),
    /// Membership → everyone: a new view was installed (`new_view`).
    ViewChanged(View),
    /// Membership → reliable channel: discard state for an excluded peer.
    Forget(ProcessId),
    /// Atomic broadcast → membership/generic: an ordered control message.
    CtrlDelivered(Message),
    /// Generic broadcast → atomic broadcast: order a control body.
    AbcastCtrl(MessageClass, Body),
    /// Monitoring → membership: exclusion decision (`remove` in Fig 9).
    Exclude(ProcessId),
    /// Membership → abcast → generic: assemble a state-transfer snapshot
    /// for a joiner; each component fills its part.
    SnapFill {
        /// The joining process the snapshot is for.
        joiner: ProcessId,
        /// The snapshot being assembled.
        snap: Box<SnapshotData>,
    },
    /// Generic → membership: the snapshot is complete; send it.
    SnapReady {
        /// The joining process the snapshot is for.
        joiner: ProcessId,
        /// The assembled snapshot.
        snap: Box<SnapshotData>,
    },
    /// Membership (joiner side) → abcast/generic: adopt transferred state.
    InstallSnapshot(Box<SnapshotData>),

    // -- application outputs --
    /// A payload delivery (`adeliver`/`gdeliver`).
    Deliver(Delivery),
    /// A view installation visible to the application (`new_view` /
    /// `init_view`).
    ViewInstalled(View),
    /// This process was removed from the group.
    Excluded,
}

// The event enum is moved on every dispatch, routed send, and scheduler
// slot; it must stay within two cache lines (ROADMAP lever from PR 1). The
// fat-but-rare payloads (snapshots, GB epoch closures, consensus batches)
// are already behind `Box`/`Arc` indirections; the hot
// [`Ev::Packet`]`(Data)` variant is what pins the size, and boxing *it*
// would put an allocation on the per-message hot path.
const _: () = assert!(
    std::mem::size_of::<Ev>() <= 128,
    "Ev outgrew two cache lines; box the offending variant"
);

impl Event for Ev {
    fn kind(&self) -> &'static str {
        match self {
            Ev::Packet(Packet::Data { msg, .. }) => msg.kind(),
            Ev::Packet(Packet::Batch { .. }) => "rc/batch",
            Ev::Packet(Packet::Ack { .. }) => "rc/ack",
            Ev::Heartbeat => "fd/heartbeat",
            Ev::FdGossip(_) => "fd/gossip",
            Ev::Abcast(_) => "op/abcast",
            Ev::Rbcast(_) => "op/rbcast",
            Ev::Gbcast(..) => "op/gbcast",
            Ev::JoinVia(_) => "op/join",
            Ev::RemoveMember(_) => "op/remove",
            Ev::RcSend(..) => "int/rc-send",
            Ev::Net(..) => "int/net",
            Ev::RcStuck(..) => "int/rc-stuck",
            Ev::RcUnstuck(_) => "int/rc-unstuck",
            Ev::Suspect(..) => "int/suspect",
            Ev::Restore(..) => "int/restore",
            Ev::Propose(..) => "int/propose",
            Ev::Decide(..) => "int/decide",
            Ev::NeedInstance(_) => "int/need-instance",
            Ev::ViewChanged(_) => "int/view-changed",
            Ev::Forget(_) => "int/forget",
            Ev::CtrlDelivered(_) => "int/ctrl-delivered",
            Ev::AbcastCtrl(..) => "int/abcast-ctrl",
            Ev::Exclude(_) => "int/exclude",
            Ev::SnapFill { .. } => "int/snap-fill",
            Ev::SnapReady { .. } => "int/snap-ready",
            Ev::InstallSnapshot(_) => "int/snap-install",
            Ev::Deliver(_) => "out/deliver",
            Ev::ViewInstalled(_) => "out/view",
            Ev::Excluded => "out/excluded",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            // Data packets carry 8 extra bytes for the piggybacked ack.
            Ev::Packet(Packet::Data { msg, .. }) => 24 + msg.size_hint(),
            Ev::Packet(Packet::Batch { msgs, .. }) => {
                24 + msgs.iter().map(|(_, m)| 8 + m.size_hint()).sum::<usize>()
            }
            Ev::Packet(Packet::Ack { .. }) => 24,
            Ev::Heartbeat => 16,
            // Heartbeat header plus 12 bytes per digest entry (id + time).
            Ev::FdGossip(digest) => 16 + 12 * digest.len(),
            _ => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_relation_is_symmetric() {
        let mut r = ConflictRelation::none(4);
        r.set_conflict(MessageClass(1), MessageClass(3));
        assert!(r.conflicts(MessageClass(1), MessageClass(3)));
        assert!(r.conflicts(MessageClass(3), MessageClass(1)));
        assert!(!r.conflicts(MessageClass(0), MessageClass(1)));
    }

    #[test]
    fn paper_relation_matches_section_3_3() {
        let r = ConflictRelation::rbcast_abcast();
        assert!(!r.conflicts(MessageClass::RBCAST, MessageClass::RBCAST));
        assert!(r.conflicts(MessageClass::RBCAST, MessageClass::ABCAST));
        assert!(r.conflicts(MessageClass::ABCAST, MessageClass::ABCAST));
    }

    #[test]
    fn out_of_range_classes_conservatively_conflict() {
        let r = ConflictRelation::none(2);
        assert!(r.conflicts(MessageClass(7), MessageClass(0)));
    }

    #[test]
    fn view_operations() {
        let p = |i| ProcessId::new(i);
        let v = View::initial(vec![p(0), p(1), p(2)]);
        assert_eq!(v.primary(), Some(p(0)));
        let j = v.with_join(p(3));
        assert_eq!(j.id, 1);
        assert_eq!(j.members.len(), 4);
        let r = j.with_remove(p(0));
        assert_eq!(r.primary(), Some(p(1)));
        let rot = v.with_rotation(p(0));
        assert_eq!(rot.members, vec![p(1), p(2), p(0)]);
        assert_eq!(rot.primary(), Some(p(1)));
        // Rotating a non-member changes nothing but the id.
        let rot2 = v.with_rotation(p(9));
        assert_eq!(rot2.members, v.members);
    }

    #[test]
    fn event_enum_stays_small() {
        // The compile-time assert above guarantees ≤ 2 cache lines; this
        // test documents the measured budget so a growth regression is a
        // visible diff, not a silent slide toward the 128-byte wall.
        assert!(
            std::mem::size_of::<Ev>() <= 72,
            "Ev grew to {} bytes (was 72); box the new fat variant",
            std::mem::size_of::<Ev>()
        );
    }

    #[test]
    fn msgid_order_is_sender_then_seq() {
        let a = MsgId {
            sender: ProcessId::new(0),
            seq: 9,
        };
        let b = MsgId {
            sender: ProcessId::new(1),
            seq: 0,
        };
        assert!(a < b);
    }
}
