//! # gcs-core — the paper's new group-communication architecture (AB-GB)
//!
//! This crate implements the full architecture of Fig 9 of *A Step Towards a
//! New Generation of Group Communication Systems* (Mena, Schiper,
//! Wojciechowski, Middleware 2003):
//!
//! * **Atomic broadcast is the basic component** (not group membership): the
//!   Chandra-Toueg reduction to a sequence of consensus instances
//!   ([`abcast`]), which needs only a ◇S failure detector and never blocks
//!   on crashes while `f < n/2` (§3.1.1).
//! * **There is no view-synchrony component**: its role is played by
//!   **generic broadcast** ([`generic`]) with an application-defined
//!   conflict relation; atomic broadcast is invoked only when conflicting
//!   messages actually race (the *thrifty* property, §3.2).
//! * **Group membership sits on top of atomic broadcast** ([`membership`]):
//!   joins and removals are ordinary ordered messages, giving view agreement
//!   and *same view delivery* with zero send-blocking (§4.4).
//! * **Failure detection is decoupled from membership** ([`gcs_fd`]) and
//!   exclusion decisions belong to a separate **monitoring** component
//!   ([`monitoring`]) fed by two independent suspicion sources: long-timeout
//!   FD suspicions and the reliable channel's output-triggered suspicions
//!   (§3.3.2).
//!
//! The quickest way in is [`GroupSim`]:
//!
//! ```
//! use gcs_core::{GroupSim, StackConfig};
//! use gcs_kernel::{ProcessId, Time};
//!
//! let mut group = GroupSim::new(3, StackConfig::default(), 7);
//! group.abcast_at(Time::from_millis(1), ProcessId::new(1), b"m1".to_vec());
//! group.abcast_at(Time::from_millis(1), ProcessId::new(2), b"m2".to_vec());
//! group.run_until(Time::from_millis(500));
//! let seqs = group.adelivered_payloads();
//! assert_eq!(seqs[0].len(), 2);
//! assert_eq!(seqs[0], seqs[1]);
//! assert_eq!(seqs[1], seqs[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abcast;
pub mod components;
pub mod generic;
pub mod membership;
pub mod monitoring;
mod rbcast;
mod stack;
mod types;

pub use abcast::BatchPolicy;
pub use gcs_fd::FdMode;
pub use monitoring::MonitoringPolicy;
pub use rbcast::{RbReceipt, Rbcast, RelayFanout};
pub use stack::{auto_fanout, build_process, GroupSim, StackConfig, SCALE_THRESHOLD};
pub use types::{
    AbMsg, Batch, Body, ConflictRelation, Delivery, DeliveryKind, Ev, GbMsg, MbMsg, Message,
    MessageClass, MonMsg, MsgId, SnapshotData, View, WireMsg,
};
