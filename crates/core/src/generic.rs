//! Thrifty generic broadcast — the component that replaces view synchrony
//! (paper §3.2, key feature 2).
//!
//! Messages carry a [`MessageClass`]; a symmetric [`ConflictRelation`] over
//! classes defines which pairs must be mutually ordered. Non-conflicting
//! messages take a **fast path** that costs two communication steps plus an
//! acknowledgement round and *never invokes consensus*; conflicting messages
//! force an **escalation** through atomic broadcast — the thrifty property
//! of Aguilera et al. \[1\] that the paper assumes (§3.2.1): *atomic
//! broadcast is used only when conflicting messages are broadcast*.
//!
//! ## The algorithm (adapted quorum-ack generic broadcast)
//!
//! Time is divided into *epochs*. Within an epoch:
//!
//! * To g-broadcast `m`: diffuse it by reliable broadcast.
//! * On first receipt of `m`: if `m` conflicts with **no** other undelivered
//!   message known locally, send `ack(epoch, m)` to all members; a process
//!   never acks two conflicting messages in one epoch.
//! * `m` is **fast-delivered** once `⌈(2n+1)/3⌉` acks of the current epoch
//!   arrive (and the payload is present).
//! * On a conflict, a process **escalates**: it freezes (stops acking) and
//!   atomically broadcasts `End(epoch, ackedSet, pendingSet)`. Every process
//!   that a-delivers an `End` for its epoch freezes and a-broadcasts its own
//!   `End`. The first `n − f_gb` `End`s *in a-delivery order* — identical at
//!   every process — close the epoch: their union `M` is delivered, first
//!   the messages supported by more than `T − 1` of the collected acked-sets
//!   (any message that may have been fast-delivered is among them), then the
//!   rest, both in id order; undelivered messages carry into the next epoch.
//!
//! With `f_gb = ⌈n/3⌉ − 1` and `T = ⌈(2n+1)/3⌉ + (n − f_gb) − n`, quorum
//! intersection gives: a fast-delivered message always clears `T` while any
//! message conflicting with it cannot — so closure order extends every
//! fast-delivery order. Safety of the fast path needs `f < n/3` (standard
//! for quorum-ack generic broadcast); the escalation path inherits
//! `f < n/2` from atomic broadcast. Correctness is exercised by the
//! property tests in `tests/generic_broadcast.rs`.

use std::collections::{BTreeMap, BTreeSet};

use gcs_kernel::{FxHashSet, ProcessId};

use crate::rbcast::{Rbcast, RelayFanout};
use crate::types::{
    Body, ConflictRelation, Delivery, DeliveryKind, GbEndData, GbMsg, Message, MessageClass, MsgId,
    View, WireMsg,
};

/// An instruction produced by the generic-broadcast core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GbOut {
    /// Send a wire message to a peer over the reliable channel.
    Wire(ProcessId, WireMsg),
    /// Atomically broadcast an epoch-closure control body (`abcast` on the
    /// component below, Fig 7/9).
    Escalate(Body),
    /// Deliver a message to the application (`gdeliver`).
    Deliver(Delivery),
}

/// The thrifty generic-broadcast core (sans-I/O).
#[derive(Debug)]
pub struct GenericCore {
    me: ProcessId,
    relation: ConflictRelation,
    rb: Rbcast,
    /// Members of the epoch currently in progress (quorums are computed on
    /// this set; view changes apply at epoch boundaries).
    epoch_members: Vec<ProcessId>,
    view_id: u64,
    active: bool,
    epoch: u64,
    /// R-delivered, not yet g-delivered.
    pending: BTreeMap<MsgId, Message>,
    /// Messages acked by this process in the current epoch. Entries persist
    /// until the epoch closes **even after delivery**: the closure-ordering
    /// safety argument needs every collected `End` to still report the
    /// fast-delivered messages its sender acked, and a process must never
    /// ack two conflicting messages within one epoch, delivered or not.
    acked: BTreeMap<MsgId, Message>,
    /// Ack senders per message for the current epoch.
    ack_senders: BTreeMap<MsgId, BTreeSet<ProcessId>>,
    /// Acks that arrived for a future epoch (the sender closed earlier).
    future_acks: BTreeMap<u64, Vec<(ProcessId, MsgId)>>,
    /// G-delivered ids (never delivered twice).
    gdelivered: FxHashSet<MsgId>,
    /// Frozen: stop acking / fast-delivering until the epoch closes.
    frozen: bool,
    /// `End` bodies collected for the current epoch, in a-delivery order
    /// (shared payloads — collecting an `End` does not copy its sets).
    ends: Vec<(ProcessId, std::sync::Arc<GbEndData>)>,
    /// A view waiting to be applied at the next epoch boundary.
    pending_view: Option<View>,
    /// FIFO mode (paper footnote 9): deliveries of one sender's messages
    /// follow the sender's broadcast order.
    fifo: bool,
    /// FIFO mode: next expected per-sender sequence number.
    next_fifo: BTreeMap<ProcessId, u64>,
    /// FIFO mode: deliveries held back until their predecessors arrive.
    holdback: BTreeMap<ProcessId, BTreeMap<u64, (Message, DeliveryKind)>>,
}

impl GenericCore {
    /// Creates the core for `me` with the given conflict relation.
    /// `initial_view` is `None` for processes that join later.
    pub fn new(me: ProcessId, relation: ConflictRelation, initial_view: Option<View>) -> Self {
        Self::with_relay(me, relation, initial_view, RelayFanout::All)
    }

    /// Creates the core with an explicit reliable-broadcast relay policy
    /// (see [`RelayFanout`]).
    pub fn with_relay(
        me: ProcessId,
        relation: ConflictRelation,
        initial_view: Option<View>,
        relay: RelayFanout,
    ) -> Self {
        let mut rb = Rbcast::with_relay(me, relay);
        let (members, view_id, active) = match initial_view {
            Some(v) => {
                rb.set_peers(&v.members);
                (v.members, v.id, true)
            }
            None => (Vec::new(), 0, false),
        };
        GenericCore {
            me,
            relation,
            rb,
            epoch_members: members,
            view_id,
            active,
            epoch: 0,
            pending: BTreeMap::new(),
            acked: BTreeMap::new(),
            ack_senders: BTreeMap::new(),
            future_acks: BTreeMap::new(),
            gdelivered: FxHashSet::default(),
            frozen: false,
            ends: Vec::new(),
            pending_view: None,
            fifo: false,
            next_fifo: BTreeMap::new(),
            holdback: BTreeMap::new(),
        }
    }

    /// Enables FIFO generic broadcast (paper footnote 9): each sender's
    /// messages are g-delivered in the order that sender broadcast them, in
    /// addition to the conflict-order guarantees.
    pub fn with_fifo(mut self) -> Self {
        self.fifo = true;
        self
    }

    /// Whether FIFO mode is enabled.
    pub fn is_fifo(&self) -> bool {
        self.fifo
    }

    /// Current epoch number (diagnostics, snapshots).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this process is frozen awaiting an epoch closure.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// G-delivered ids, sorted (for snapshots).
    pub fn gdelivered(&self) -> Vec<MsgId> {
        let mut v: Vec<MsgId> = self.gdelivered.iter().copied().collect();
        v.sort_unstable();
        v
    }

    fn n(&self) -> usize {
        self.epoch_members.len()
    }

    /// Fast-path ack quorum: `⌈(2n+1)/3⌉`.
    pub fn fast_quorum(&self) -> usize {
        (2 * self.n() + 3) / 3
    }

    /// Crash tolerance of the epoch-closure path: `⌈n/3⌉ − 1`.
    pub fn f_gb(&self) -> usize {
        self.n().div_ceil(3) - 1
    }

    /// Number of `End`s that close an epoch.
    pub fn end_quorum(&self) -> usize {
        self.n() - self.f_gb()
    }

    fn priority_threshold(&self) -> usize {
        self.fast_quorum() + self.end_quorum() - self.n()
    }

    /// Generically broadcasts a payload-bearing message of `class`,
    /// appending instructions to `out` (hot-path entry point: callers reuse
    /// one buffer across invocations).
    pub fn gbcast_into(&mut self, class: MessageClass, body: Body, out: &mut Vec<GbOut>) {
        let id = self.rb.next_id();
        let message = Message { id, class, body };
        // Shallow per-peer clones: payloads are arena handles.
        for &to in self.rb.broadcast(&message) {
            out.push(GbOut::Wire(to, WireMsg::Gb(GbMsg::Data(message.clone()))));
        }
        self.admit(message, out);
    }

    /// [`gbcast_into`](Self::gbcast_into) returning a fresh buffer.
    pub fn gbcast(&mut self, class: MessageClass, body: Body) -> Vec<GbOut> {
        let mut out = Vec::new();
        self.gbcast_into(class, body, &mut out);
        out
    }

    /// Handles a diffused message from the network.
    pub fn on_data_into(&mut self, from: ProcessId, message: Message, out: &mut Vec<GbOut>) {
        let receipt = self.rb.on_data(from, message);
        if let Some(message) = receipt.deliver {
            for to in receipt.relay_to {
                out.push(GbOut::Wire(to, WireMsg::Gb(GbMsg::Data(message.clone()))));
            }
            self.admit(message, out);
        }
    }

    /// [`on_data_into`](Self::on_data_into) returning a fresh buffer.
    pub fn on_data(&mut self, from: ProcessId, message: Message) -> Vec<GbOut> {
        let mut out = Vec::new();
        self.on_data_into(from, message, &mut out);
        out
    }

    /// First local receipt of a message: enter pending, maybe ack.
    fn admit(&mut self, message: Message, out: &mut Vec<GbOut>) {
        if self.gdelivered.contains(&message.id) {
            return;
        }
        let id = message.id;
        self.pending.insert(id, message);
        if self.active && !self.frozen {
            self.consider_ack(id, out);
            self.try_fast_deliver(id, out);
        }
    }

    /// Acks `id` if it conflicts with no other message known this epoch
    /// (pending *or* acked — even already delivered); escalates otherwise.
    fn consider_ack(&mut self, id: MsgId, out: &mut Vec<GbOut>) {
        let message = self.pending[&id].clone();
        let class = message.class;
        let conflicting = self
            .pending
            .iter()
            .chain(self.acked.iter())
            .any(|(&x, m)| x != id && self.relation.conflicts(m.class, class));
        if conflicting {
            self.escalate(out);
        } else if let std::collections::btree_map::Entry::Vacant(e) = self.acked.entry(id) {
            e.insert(message);
            let epoch = self.epoch;
            // Count the local ack directly; send to the other members.
            self.ack_senders.entry(id).or_default().insert(self.me);
            let me = self.me;
            for &p in &self.epoch_members {
                if p != me {
                    out.push(GbOut::Wire(p, WireMsg::Gb(GbMsg::Ack { epoch, id })));
                }
            }
        }
    }

    /// Freezes and a-broadcasts this process's `End` for the current epoch.
    fn escalate(&mut self, out: &mut Vec<GbOut>) {
        if self.frozen || !self.active {
            return;
        }
        self.frozen = true;
        let acked: Vec<Message> = self.acked.values().cloned().collect();
        let pending: Vec<Message> = self
            .pending
            .iter()
            .filter(|(id, _)| !self.acked.contains_key(id))
            .map(|(_, m)| m.clone())
            .collect();
        out.push(GbOut::Escalate(Body::GbEnd(std::sync::Arc::new(
            GbEndData {
                epoch: self.epoch,
                acked,
                pending,
            },
        ))));
    }

    /// Handles an ack from `from`.
    pub fn on_ack_into(&mut self, from: ProcessId, epoch: u64, id: MsgId, out: &mut Vec<GbOut>) {
        if epoch > self.epoch {
            self.future_acks.entry(epoch).or_default().push((from, id));
            return;
        }
        if epoch < self.epoch || self.gdelivered.contains(&id) {
            return; // stale
        }
        self.ack_senders.entry(id).or_default().insert(from);
        self.try_fast_deliver(id, out);
    }

    /// [`on_ack_into`](Self::on_ack_into) returning a fresh buffer.
    pub fn on_ack(&mut self, from: ProcessId, epoch: u64, id: MsgId) -> Vec<GbOut> {
        let mut out = Vec::new();
        self.on_ack_into(from, epoch, id, &mut out);
        out
    }

    fn try_fast_deliver(&mut self, id: MsgId, out: &mut Vec<GbOut>) {
        if self.frozen || !self.active {
            return;
        }
        let quorum = self.fast_quorum();
        let supported = self.ack_senders.get(&id).is_some_and(|s| s.len() >= quorum);
        if supported && self.pending.contains_key(&id) {
            self.gdeliver(id, DeliveryKind::GenericFast, out);
        }
    }

    fn gdeliver(&mut self, id: MsgId, kind: DeliveryKind, out: &mut Vec<GbOut>) {
        let Some(message) = self.pending.remove(&id) else {
            return;
        };
        // Note: the id stays in `acked` until the epoch closes (safety of
        // the closure ordering depends on it).
        self.ack_senders.remove(&id);
        self.gdelivered.insert(id);
        if !self.fifo {
            self.emit_delivery(message, kind, out);
            return;
        }
        // FIFO hold-back: deliver only when every earlier message of the
        // same sender has been delivered; release any unblocked successors.
        let sender = id.sender;
        self.holdback
            .entry(sender)
            .or_default()
            .insert(id.seq, (message, kind));
        loop {
            let next = self.next_fifo.entry(sender).or_insert(0);
            let Some((m, k)) = self
                .holdback
                .get_mut(&sender)
                .and_then(|h| h.remove(&*next))
            else {
                break;
            };
            *next += 1;
            self.emit_delivery(m, k, out);
        }
    }

    fn emit_delivery(&mut self, message: Message, kind: DeliveryKind, out: &mut Vec<GbOut>) {
        if let Body::App(payload) = &message.body {
            out.push(GbOut::Deliver(Delivery {
                kind,
                id: message.id,
                class: message.class,
                payload: *payload,
                view: self.view_id,
            }));
        }
    }

    /// Handles an a-delivered `End` control message (total order guarantees
    /// every member processes the same `End` sequence).
    pub fn on_end_delivered_into(
        &mut self,
        end_sender: ProcessId,
        end: std::sync::Arc<GbEndData>,
        out: &mut Vec<GbOut>,
    ) {
        if !self.active || end.epoch != self.epoch {
            return; // stale straggler (or pre-join traffic)
        }
        // The epoch is closing: contribute our own End if we have not yet.
        self.escalate(out);
        if self.ends.iter().any(|(s, _)| *s == end_sender) {
            return;
        }
        self.ends.push((end_sender, end));
        if self.ends.len() >= self.end_quorum() {
            self.close_epoch(out);
        }
    }

    /// [`on_end_delivered_into`](Self::on_end_delivered_into) returning a
    /// fresh buffer.
    pub fn on_end_delivered(
        &mut self,
        end_sender: ProcessId,
        end: std::sync::Arc<GbEndData>,
    ) -> Vec<GbOut> {
        let mut out = Vec::new();
        self.on_end_delivered_into(end_sender, end, &mut out);
        out
    }

    /// A view change was a-delivered: apply it at the next epoch boundary,
    /// forcing one if the group is mid-epoch.
    pub fn on_view_change(&mut self, view: View) -> Vec<GbOut> {
        let mut out = Vec::new();
        if !view.contains(self.me) {
            self.active = false;
            self.view_id = view.id;
            return out;
        }
        if !self.active {
            // We are the joiner; state came via the snapshot.
            self.view_id = view.id;
            return out;
        }
        self.pending_view = Some(view);
        self.escalate(&mut out);
        out
    }

    /// Activates a joining process at `epoch` with the given delivery
    /// history.
    pub fn install_snapshot(&mut self, view: &View, epoch: u64, gdelivered: &[MsgId]) {
        self.epoch_members = view.members.clone();
        self.view_id = view.id;
        self.rb.set_peers(&view.members);
        self.active = true;
        self.epoch = epoch;
        self.gdelivered = gdelivered.iter().copied().collect();
        self.pending.retain(|id, _| !gdelivered.contains(id));
        if self.fifo {
            // FIFO delivery makes each sender's delivered set prefix-closed,
            // so the cursor resumes one past the highest delivered sequence.
            for id in gdelivered {
                let next = self.next_fifo.entry(id.sender).or_insert(0);
                *next = (*next).max(id.seq + 1);
            }
        }
    }

    /// Epoch closure: deliver the union of the collected `End`s —
    /// prioritized (possibly-fast-delivered) messages first — and start the
    /// next epoch.
    fn close_epoch(&mut self, out: &mut Vec<GbOut>) {
        let threshold = self.priority_threshold();
        // Union of all reported messages, and per-id support counts over the
        // *acked* components.
        let mut union: BTreeMap<MsgId, Message> = BTreeMap::new();
        let mut support: BTreeMap<MsgId, usize> = BTreeMap::new();
        for (_, end) in std::mem::take(&mut self.ends) {
            for m in &end.acked {
                *support.entry(m.id).or_insert(0) += 1;
                union.entry(m.id).or_insert_with(|| m.clone());
            }
            for m in &end.pending {
                union.entry(m.id).or_insert_with(|| m.clone());
            }
        }
        // Prioritized first (id order), then the rest (id order).
        let (first, second): (Vec<&Message>, Vec<&Message>) = union
            .values()
            .partition(|m| support.get(&m.id).copied().unwrap_or(0) >= threshold);
        for m in first.into_iter().chain(second) {
            let id = m.id;
            if self.gdelivered.contains(&id) {
                continue;
            }
            self.pending.entry(id).or_insert_with(|| m.clone());
            self.gdeliver(id, DeliveryKind::GenericOrdered, out);
        }

        // Start the next epoch.
        self.epoch += 1;
        self.acked.clear();
        self.ack_senders.clear();
        self.frozen = false;
        if let Some(v) = self.pending_view.take() {
            self.epoch_members = v.members.clone();
            self.view_id = v.id;
            self.rb.set_peers(&v.members);
        }
        // Merge acks that raced ahead into the new epoch.
        if let Some(acks) = self.future_acks.remove(&self.epoch) {
            for (from, id) in acks {
                if !self.gdelivered.contains(&id) {
                    self.ack_senders.entry(id).or_default().insert(from);
                }
            }
        }
        self.future_acks = self.future_acks.split_off(&self.epoch);
        // Re-process carried-over messages in id order: re-ack or
        // re-escalate immediately.
        let carried: Vec<MsgId> = self.pending.keys().copied().collect();
        for id in carried {
            if self.frozen {
                break;
            }
            if self.pending.contains_key(&id) {
                self.consider_ack(id, out);
                self.try_fast_deliver(id, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_kernel::PayloadRef;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn members(n: u32) -> Vec<ProcessId> {
        (0..n).map(pid).collect()
    }

    fn core(i: u32, n: u32, relation: ConflictRelation) -> GenericCore {
        GenericCore::new(pid(i), relation, Some(View::initial(members(n))))
    }

    fn empty_end(epoch: u64) -> std::sync::Arc<GbEndData> {
        std::sync::Arc::new(GbEndData {
            epoch,
            acked: vec![],
            pending: vec![],
        })
    }

    fn app(sender: u32, seq: u64, class: u16) -> Message {
        Message {
            id: MsgId {
                sender: pid(sender),
                seq,
            },
            class: MessageClass(class),
            body: Body::App(PayloadRef::EMPTY),
        }
    }

    #[test]
    fn quorum_arithmetic() {
        for (n, fast, f, endq) in [(3, 3, 0, 3), (4, 3, 1, 3), (5, 4, 1, 4), (7, 5, 2, 5)] {
            let c = core(0, n, ConflictRelation::none(4));
            assert_eq!(c.fast_quorum(), fast, "n={n}");
            assert_eq!(c.f_gb(), f, "n={n}");
            assert_eq!(c.end_quorum(), endq, "n={n}");
            // A fast-delivered message always beats a conflicting one's
            // possible support.
            assert!(2 * c.fast_quorum() + c.end_quorum() > 2 * (n as usize));
        }
    }

    #[test]
    fn non_conflicting_message_is_acked_to_all_members() {
        let mut c = core(0, 4, ConflictRelation::none(4));
        let out = c.on_data(pid(1), app(1, 0, 0));
        let acks = out
            .iter()
            .filter(|o| matches!(o, GbOut::Wire(_, WireMsg::Gb(GbMsg::Ack { .. }))))
            .count();
        assert_eq!(acks, 3, "ack to every other member");
        assert!(!c.is_frozen());
    }

    #[test]
    fn fast_delivery_at_quorum() {
        // n=4 → fast quorum 3 (self + two others).
        let mut c = core(0, 4, ConflictRelation::none(4));
        let m = app(1, 0, 0);
        c.on_data(pid(1), m.clone());
        assert!(c.on_ack(pid(1), 0, m.id).is_empty());
        let out = c.on_ack(pid(2), 0, m.id);
        assert!(
            out.iter()
                .any(|o| matches!(o, GbOut::Deliver(d) if d.kind == DeliveryKind::GenericFast)),
            "fast delivery at quorum: {out:?}"
        );
        // Further acks for a delivered message are ignored.
        assert!(c.on_ack(pid(3), 0, m.id).is_empty());
    }

    #[test]
    fn conflicting_messages_escalate() {
        let mut c = core(0, 4, ConflictRelation::all(4));
        c.on_data(pid(1), app(1, 0, 0));
        let out = c.on_data(pid(2), app(2, 0, 1));
        assert!(out
            .iter()
            .any(|o| matches!(o, GbOut::Escalate(Body::GbEnd { .. }))));
        assert!(c.is_frozen());
        // Frozen: no acks for new arrivals.
        let out = c.on_data(pid(3), app(3, 0, 2));
        assert!(out
            .iter()
            .all(|o| !matches!(o, GbOut::Wire(_, WireMsg::Gb(GbMsg::Ack { .. })))));
    }

    #[test]
    fn epoch_closure_delivers_union_and_thaws() {
        let mut c = core(0, 3, ConflictRelation::all(4));
        let m1 = app(1, 0, 0);
        let m2 = app(2, 0, 1);
        c.on_data(pid(1), m1.clone());
        let _ = c.on_data(pid(2), m2.clone()); // escalates (conflict)
        assert!(c.is_frozen());
        // n=3 → end quorum 3: three Ends close the epoch.
        let mk_end = |_sender: u32| {
            std::sync::Arc::new(GbEndData {
                epoch: 0,
                acked: vec![m1.clone()],
                pending: vec![m2.clone()],
            })
        };
        assert!(c.on_end_delivered(pid(0), mk_end(0)).is_empty());
        assert!(c.on_end_delivered(pid(1), mk_end(1)).is_empty());
        let out = c.on_end_delivered(pid(2), mk_end(2));
        let delivered: Vec<MsgId> = out
            .iter()
            .filter_map(|o| match o {
                GbOut::Deliver(d) => Some(d.id),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![m1.id, m2.id], "prioritized (acked) first");
        assert_eq!(c.epoch(), 1);
        assert!(!c.is_frozen());
    }

    #[test]
    fn stale_and_duplicate_ends_are_ignored() {
        let mut c = core(0, 3, ConflictRelation::all(4));
        assert!(c.on_end_delivered(pid(1), empty_end(7)).is_empty());
        // Freeze via a first End of the right epoch.
        let _ = c.on_end_delivered(pid(1), empty_end(0));
        // Duplicate sender does not advance the count.
        let _ = c.on_end_delivered(pid(1), empty_end(0));
        assert_eq!(c.epoch(), 0);
    }

    #[test]
    fn future_acks_are_buffered_until_their_epoch() {
        let mut c = core(0, 3, ConflictRelation::none(4));
        let m = app(1, 0, 0);
        // Ack for epoch 1 arrives while we are in epoch 0.
        assert!(c.on_ack(pid(1), 1, m.id).is_empty());
        // Close epoch 0 (three empty Ends).
        let _ = c.on_end_delivered(pid(0), empty_end(0));
        let _ = c.on_end_delivered(pid(1), empty_end(0));
        let _ = c.on_end_delivered(pid(2), empty_end(0));
        assert_eq!(c.epoch(), 1);
        // Now the data + one more ack complete the n=3 fast quorum
        // (self + p1-buffered + p2).
        c.on_data(pid(1), m.clone());
        let out = c.on_ack(pid(2), 1, m.id);
        assert!(
            out.iter().any(|o| matches!(o, GbOut::Deliver(_))),
            "{out:?}"
        );
    }

    #[test]
    fn view_change_forces_epoch_boundary() {
        let mut c = core(0, 3, ConflictRelation::none(4));
        let v1 = View {
            id: 1,
            members: vec![pid(0), pid(1), pid(2), pid(3)],
        };
        let out = c.on_view_change(v1.clone());
        assert!(out.iter().any(|o| matches!(o, GbOut::Escalate(_))));
        // Close the epoch; the new view applies afterwards.
        let _ = c.on_end_delivered(pid(0), empty_end(0));
        let _ = c.on_end_delivered(pid(1), empty_end(0));
        let out = c.on_end_delivered(pid(2), empty_end(0));
        assert!(out.is_empty());
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.fast_quorum(), 3, "quorums recomputed for n=4");
    }

    #[test]
    fn removed_member_goes_inactive() {
        let mut c = core(2, 3, ConflictRelation::none(4));
        let v1 = View {
            id: 1,
            members: vec![pid(0), pid(1)],
        };
        let _ = c.on_view_change(v1);
        let out = c.gbcast(MessageClass(0), Body::App(PayloadRef::EMPTY));
        // Still diffuses (it is not a member, deliveries will not happen for
        // it), but never acks or delivers.
        assert!(out.iter().all(|o| !matches!(o, GbOut::Deliver(_))));
    }

    #[test]
    fn fifo_holds_back_out_of_order_fast_deliveries() {
        // n=4, no conflicts: m0 and m1 from the same sender; m1's quorum
        // completes first, but FIFO holds it until m0 is delivered.
        let mut c = core(0, 4, ConflictRelation::none(4)).with_fifo();
        assert!(c.is_fifo());
        let m0 = app(1, 0, 0);
        let m1 = app(1, 1, 0);
        c.on_data(pid(1), m0.clone());
        c.on_data(pid(1), m1.clone());
        // m1 reaches the quorum (3 for n=4) first: self + p1 + p2.
        c.on_ack(pid(1), 0, m1.id);
        let out = c.on_ack(pid(2), 0, m1.id);
        assert!(
            out.iter().all(|o| !matches!(o, GbOut::Deliver(_))),
            "m1 held back: {out:?}"
        );
        // m0 completes: both are released, in order.
        c.on_ack(pid(1), 0, m0.id);
        let out = c.on_ack(pid(3), 0, m0.id);
        let ids: Vec<MsgId> = out
            .iter()
            .filter_map(|o| match o {
                GbOut::Deliver(d) => Some(d.id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![m0.id, m1.id]);
    }

    #[test]
    fn fifo_snapshot_resumes_per_sender_cursor() {
        let mut c = GenericCore::new(pid(3), ConflictRelation::none(4), None).with_fifo();
        let v = View {
            id: 1,
            members: vec![pid(0), pid(1), pid(2), pid(3)],
        };
        // Sender p1 already had seqs 0..=2 delivered before the join.
        let delivered: Vec<MsgId> = (0..3)
            .map(|s| MsgId {
                sender: pid(1),
                seq: s,
            })
            .collect();
        c.install_snapshot(&v, 4, &delivered);
        // The next message from p1 (seq 3) is deliverable immediately.
        let m3 = app(1, 3, 0);
        let mut out = c.on_data(pid(1), m3.clone());
        out.extend(c.on_ack(pid(0), 4, m3.id));
        out.extend(c.on_ack(pid(1), 4, m3.id));
        out.extend(c.on_ack(pid(2), 4, m3.id));
        assert!(
            out.iter()
                .any(|o| matches!(o, GbOut::Deliver(d) if d.id == m3.id)),
            "cursor resumed past the snapshot: {out:?}"
        );
    }

    #[test]
    fn non_member_sender_messages_still_deliver() {
        // A message from a sender that is not a member (e.g. just removed)
        // still goes through the fast path at members.
        let mut c = core(0, 3, ConflictRelation::none(4));
        let m = app(9, 0, 0);
        c.on_data(pid(9), m.clone());
        let out = c.on_ack(pid(1), 0, m.id);
        // n=3 → quorum 3; self + p1 = 2, one more needed.
        assert!(out.iter().all(|o| !matches!(o, GbOut::Deliver(_))));
        let out = c.on_ack(pid(2), 0, m.id);
        assert!(out.iter().any(|o| matches!(o, GbOut::Deliver(_))));
    }
}
