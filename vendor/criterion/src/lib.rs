//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! Provides the benchmarking surface this workspace uses — `criterion_group!`
//! / `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, and `Bencher::iter` — backed by a simple wall-clock
//! harness: per sample it runs a timed batch of iterations and reports the
//! minimum, median and mean time per iteration.
//!
//! No statistical regression analysis, plotting or result persistence: this
//! shim exists so `cargo bench` runs offline. The perf-trajectory numbers
//! committed to the repository come from the `repro` binary's JSON emitter,
//! which uses its own timing loop.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled by [`iter`](Bencher::iter): per-sample mean nanoseconds.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Measures `routine`, running it in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size batches so all samples fit the measurement budget.
        let total_iters =
            (self.config.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let batch = (total_iters / self.config.sample_size as u64).max(1);
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
    filter: Option<String>,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Applies the `cargo bench <filter>` substring filter, if any.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        if let Some(flt) = &self.filter {
            if !id.contains(flt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<40} time: [min {} | median {} | mean {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Parses the benchmark-name filter from `cargo bench` CLI arguments,
/// skipping harness flags such as `--bench`.
pub fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// Declares a benchmark group, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            criterion = criterion.with_filter($crate::cli_filter());
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("trivial", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().with_filter(Some("nomatch".into()));
        // Must not even invoke the closure's iter (would panic below).
        c.bench_function("other", |_b| panic!("should be filtered out"));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }
}
