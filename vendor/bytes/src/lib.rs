//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` API it actually uses: a cheaply
//! cloneable, immutable byte container. Cloning is O(1) — either a static
//! borrow or an `Arc` reference-count bump — which is what makes broadcast
//! fan-out of payload-bearing messages cheap throughout the simulator.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous region of immutable bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty byte string (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the container holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Copies `data` into a new shared allocation (the real `bytes` API for
    /// building an owned `Bytes` from a borrowed slice).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(Repr::Static(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Repr::Static(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Repr::Shared(Arc::from(b)))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_and_shared_compare() {
        assert_eq!(Bytes::from_static(b"x"), Bytes::from(b"x".to_vec()));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"probe").as_ref(), b"probe");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x01")), "b\"a\\x01\"");
    }
}
