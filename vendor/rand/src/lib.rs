//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The simulator only needs a deterministic, seedable PRNG with
//! `gen_bool` / `gen_range` / `gen`. This shim implements those on top of
//! xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded through
//! SplitMix64 — high-quality, fast, and fully deterministic across runs and
//! platforms, which is all the discrete-event simulation requires.
//!
//! Note: the stream differs from the real `rand::rngs::StdRng` (ChaCha12);
//! only determinism per seed matters here, not cross-crate stream equality.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in simulator use, where the bias of a plain reduction
                // would already be negligible, but do it right anyway.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u64, usize, u32);

/// The raw random-word source.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.gen_range(5u64..6), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
