//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` macros, `any::<T>()`, range
//! strategies, tuple strategies, `collection::vec` and `option::of`.
//!
//! Differences from real proptest, by design of this offline shim:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (cases are generated from a deterministic per-case seed, so
//!   failures reproduce exactly on re-run).
//! * **Deterministic** — the RNG seed is fixed per (test, case index); there
//!   is no persistence file and no environment-variable configuration.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Failure raised by a `prop_assert*` macro or returned from a test body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Creates a rejection (treated identically to a failure in this shim).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the full suite fast while
        // still exploring a meaningful slice of the input space per run.
        ProptestConfig { cases: 64 }
    }
}

/// The driver that runs the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    test_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the test named `name`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // Stable per-test seed (FNV-1a of the test path) so different tests
        // explore different corners but each test is reproducible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            test_seed: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic RNG for case number `case`.
    pub fn rng_for(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.test_seed ^ ((case as u64) << 32 | 0x9E37))
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen_range(0u64..span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u16, u32, u64, usize, u8);

/// Strategy for "any value of `T`" (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating uniformly distributed values of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_any!(u16, u32, u64, bool);

impl Strategy for Any<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut StdRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.start as u64..self.len.end as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Option`s of values from an inner strategy.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` ~25% of the time, `Some(inner)` otherwise (matching
    /// real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both were {:?}", a);
    }};
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ::core::default::Default::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut __rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} failed: {e}\n  inputs: {inputs}",
                        case = case,
                        e = e,
                        inputs = __inputs,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn tuples_and_options(pair in (0u64..10, any::<bool>()),
                              opt in crate::option::of(0u32..3)) {
            prop_assert!(pair.0 < 10);
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert_eq!(pair.0, pair.0);
            prop_assert_ne!(pair.0, pair.0 + 1);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("inputs"), "panic message: {msg}");
    }
}
